#include "serving/serving.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/cancellation.h"
#include "common/run_journal.h"
#include "common/status.h"
#include "common/string_util.h"
#include "costmodel/execution_style.h"

namespace flat {
namespace {

/** Rounds @p tokens up to the next multiple of @p bucket. */
std::uint64_t
bucket_up(std::uint64_t tokens, std::uint64_t bucket)
{
    if (bucket <= 1) {
        return tokens;
    }
    return (tokens + bucket - 1) / bucket * bucket;
}

/** Nearest-rank percentile of an ascending-sorted sample. */
double
percentile(const std::vector<double>& sorted, double q)
{
    if (sorted.empty()) {
        return 0.0;
    }
    const std::size_t rank = static_cast<std::size_t>(
        std::max(1.0, std::ceil(q * static_cast<double>(sorted.size()))));
    return sorted[std::min(rank, sorted.size()) - 1];
}

/** The style tag step-cost keys carry ("default" = policy's style). */
std::string
style_tag(const SimOptions& sim)
{
    if (sim.styles.empty()) {
        return "default";
    }
    std::string tag;
    for (const std::string& s : sim.styles) {
        if (!tag.empty()) {
            tag += ',';
        }
        tag += s;
    }
    return tag;
}

/**
 * Prices prefill and decode steps: an in-memory memo keyed by
 * (kind, batch, token bucket) in front of the model-scope DSE, with an
 * optional journal underneath so resumed runs replay recorded costs.
 */
class StepCostModel
{
  public:
    StepCostModel(const AccelConfig& accel, const ModelConfig& model,
                  const ServeOptions& options, ServeReport* report)
        : simulator_(accel), model_(model), options_(options),
          policy_(DataflowPolicy::parse(options.policy)),
          style_(style_tag(options.sim)), report_(report)
    {
    }

    /** Seconds one prefill of @p batch prompts of @p tokens takes. */
    double
    prefill_seconds(std::uint64_t batch, std::uint64_t tokens)
    {
        return lookup("prefill", batch, tokens, [&] {
            const Workload w = make_workload(model_, batch, tokens);
            return simulator_
                .run(w, Scope::kModel, policy_, options_.sim)
                .runtime_s;
        });
    }

    /** Seconds one decode step of @p batch tokens at context @p n_ctx
     *  takes. */
    double
    decode_seconds(std::uint64_t batch, std::uint64_t n_ctx)
    {
        return lookup("decode", batch, n_ctx, [&] {
            const Workload w =
                make_decode_workload(model_, batch, n_ctx);
            return simulator_
                .run(w, Scope::kModel, policy_, options_.sim)
                .runtime_s;
        });
    }

  private:
    template <typename Fn>
    double
    lookup(const char* kind, std::uint64_t batch, std::uint64_t tokens,
           Fn&& compute)
    {
        ++report_->cost_lookups;
        const std::string key =
            strprintf("cost|style=%s|%s|b=%llu|t=%llu", style_.c_str(),
                      kind, static_cast<unsigned long long>(batch),
                      static_cast<unsigned long long>(tokens));
        const auto it = memo_.find(key);
        if (it != memo_.end()) {
            ++report_->cost_memo_hits;
            return it->second;
        }
        double seconds = 0.0;
        const JsonValue* restored =
            options_.journal != nullptr
                ? options_.journal->find("serve", key)
                : nullptr;
        if (restored != nullptr) {
            ++report_->cost_journal_hits;
            seconds = restored->member_number("s");
        } else {
            seconds = compute();
            if (options_.journal != nullptr) {
                JsonWriter json;
                json.begin_object();
                json.field("s", seconds);
                json.end_object();
                options_.journal->append("serve", key, json.str());
            }
        }
        memo_.emplace(key, seconds);
        return seconds;
    }

    Simulator simulator_;
    ModelConfig model_;
    const ServeOptions& options_;
    DataflowPolicy policy_;
    std::string style_;
    ServeReport* report_;
    std::map<std::string, double> memo_;
};

} // namespace

std::string
serving_space_canonical(const AccelConfig& accel,
                        const ModelConfig& model,
                        const std::vector<Request>& requests,
                        const ServeOptions& options)
{
    std::ostringstream text;
    text << "serve accel=" << accel.name << ' ' << accel.pe_rows << 'x'
         << accel.pe_cols << " sl=" << accel.sl_bytes
         << " sg=" << accel.sg_bytes << " sg2=" << accel.sg2_bytes
         << " rf=" << accel.rf_bytes << " dram=" << accel.dram_bytes
         << " on=" << accel.onchip_bw << " off=" << accel.offchip_bw
         << " clk=" << accel.clock_hz << " sfu=" << accel.sfu_lanes
         << " bpe=" << accel.bytes_per_element << '\n';
    text << "model " << model.name << ' ' << model.num_blocks << ' '
         << model.hidden_dim << ' ' << model.num_heads << ' '
         << model.ff_dim << ' ' << model.kv_heads() << '\n';
    text << "sched policy=" << to_string(options.sched.policy)
         << " max_batch=" << options.sched.max_batch
         << " ctx_bucket=" << options.ctx_bucket << '\n';
    text << "dse policy=" << options.policy
         << " styles=" << style_tag(options.sim)
         << " quick=" << options.sim.quick << " overlap="
         << static_cast<int>(options.sim.baseline_overlap);
    // The search mode prices every step, so a journal written under
    // one mode is stale under another. Appended only for the new
    // non-exhaustive modes: a pre-upgrade all-exhaustive journal
    // keeps its historical hash. The auto-DSE mode is hashed
    // separately whenever it disagrees with the fixed-path mode.
    if (options.sim.search_mode != SearchMode::kExhaustive) {
        text << " mode=" << to_string(options.sim.search_mode);
    }
    if (options.dse_mode != options.sim.search_mode) {
        text << " auto_mode=" << to_string(options.dse_mode);
    }
    text << '\n';
    text << "trace n=" << requests.size() << '\n';
    for (const Request& r : requests) {
        text << r.id << ' ' << r.arrival_s << ' ' << r.prompt_tokens
             << ' ' << r.output_tokens << '\n';
    }
    return text.str();
}

ServeReport
run_serving(const AccelConfig& accel, const ModelConfig& model,
            const std::vector<Request>& requests,
            const ServeOptions& options)
{
    FLAT_CHECK(!requests.empty(), "nothing to serve: empty trace");
    FLAT_CHECK(options.ctx_bucket > 0,
               "context bucket must be positive");
    model.validate();
    accel.validate();

    ServeReport report;
    report.model = model.name;
    report.policy = options.policy;
    report.sched_policy = to_string(options.sched.policy);
    report.max_batch = options.sched.max_batch;
    report.offered = requests.size();

    StepCostModel costs(accel, model, options, &report);
    ContinuousBatchScheduler scheduler(options.sched);
    const CancellationToken* cancel = options.sim.cancel;

    std::vector<double> latencies;
    double now = 0.0;
    std::size_t next_arrival = 0;

    const auto admit_until = [&](double t) {
        while (next_arrival < requests.size() &&
               requests[next_arrival].arrival_s <= t) {
            scheduler.enqueue(requests[next_arrival]);
            ++next_arrival;
        }
    };

    try {
        while (scheduler.has_work() ||
               next_arrival < requests.size()) {
            if (cancel != nullptr && cancel->cancelled()) {
                report.cancelled = true;
                break;
            }
            admit_until(now);
            const SchedStep step = scheduler.plan();
            if (step.kind == SchedStep::Kind::kIdle) {
                FLAT_CHECK(next_arrival < requests.size(),
                           "scheduler idle with no pending arrivals");
                now = std::max(now,
                               requests[next_arrival].arrival_s);
                continue;
            }
            if (step.kind == SchedStep::Kind::kPrefill) {
                // One padded prefill batch: every member is processed
                // at the longest member's bucketed prompt length.
                std::uint64_t longest = 0;
                std::uint64_t exact = 0;
                for (std::size_t i = 0; i < step.ids.size(); ++i) {
                    const Request& r =
                        requests[static_cast<std::size_t>(
                            step.ids[i])];
                    longest = std::max(longest, r.prompt_tokens);
                    exact += r.prompt_tokens;
                }
                now += costs.prefill_seconds(
                    step.ids.size(),
                    bucket_up(longest, options.ctx_bucket));
                scheduler.complete_prefill(step);
                report.prefilled_tokens += exact;
                ++report.prefill_steps;
                continue;
            }
            // Decode: one token per member at the deepest member's
            // bucketed context (padded batch, like real serving).
            std::uint64_t deepest = 0;
            for (const std::uint64_t id : step.ids) {
                deepest =
                    std::max(deepest, scheduler.context_tokens(id));
            }
            now += costs.decode_seconds(
                step.ids.size(),
                bucket_up(deepest, options.ctx_bucket));
            const std::vector<std::uint64_t> finished =
                scheduler.complete_decode(step);
            report.generated_tokens += step.ids.size();
            ++report.decode_steps;
            for (const std::uint64_t id : finished) {
                const Request& r =
                    requests[static_cast<std::size_t>(id)];
                latencies.push_back(now - r.arrival_s);
                report.completion_order.push_back(id);
                ++report.completed;
            }
        }
    } catch (const CancelledError&) {
        // A cancel that tripped inside a step-cost DSE: drain with
        // what completed so far, exactly like the loop-level check.
        report.cancelled = true;
    }

    report.makespan_s = now;
    std::vector<double> sorted = latencies;
    std::sort(sorted.begin(), sorted.end());
    report.p50_s = percentile(sorted, 0.50);
    report.p95_s = percentile(sorted, 0.95);
    report.p99_s = percentile(sorted, 0.99);
    if (!sorted.empty()) {
        double sum = 0.0;
        for (const double v : sorted) {
            sum += v;
        }
        report.mean_s = sum / static_cast<double>(sorted.size());
    }
    report.tokens_per_s =
        report.makespan_s > 0.0
            ? static_cast<double>(report.generated_tokens) /
                  report.makespan_s
            : 0.0;
    if (options.journal != nullptr) {
        options.journal->flush();
    }
    return report;
}

ServingSearchResult
search_serving(const AccelConfig& accel, const ModelConfig& model,
               const std::vector<Request>& requests,
               const ServeOptions& options)
{
    // Style menu: the caller's list, or the whole registry in its
    // stable enumeration order.
    std::vector<std::string> styles = options.sim.styles;
    if (styles.empty() ||
        (styles.size() == 1 && styles.front() == "all")) {
        styles.clear();
        for (const ExecutionStyle* style : execution_styles()) {
            styles.push_back(style->id());
        }
    }

    ServingSearchResult result;
    for (const std::string& style : styles) {
        for (const SchedPolicy policy : sched_policies()) {
            if (options.sim.cancel != nullptr &&
                options.sim.cancel->cancelled()) {
                result.report.cancelled = true;
                return result;
            }
            ServeOptions combo = options;
            combo.sim.styles = {style};
            combo.sim.search_mode = options.dse_mode;
            combo.sched.policy = policy;
            ServeReport report;
            try {
                report = run_serving(accel, model, requests, combo);
            } catch (const Error&) {
                continue; // style infeasible for this trace's shapes
            }
            const bool cancelled = report.cancelled;
            result.evaluated.push_back(report);
            const bool better =
                !result.found ||
                report.tokens_per_s > result.report.tokens_per_s ||
                (report.tokens_per_s == result.report.tokens_per_s &&
                 report.p99_s < result.report.p99_s);
            if (!cancelled && better) {
                result.found = true;
                result.best.style = style;
                result.best.sched = policy;
                result.report = report;
            }
            if (cancelled) {
                result.report.cancelled = true;
                return result;
            }
        }
    }
    return result;
}

} // namespace flat

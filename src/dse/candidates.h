/**
 * @file
 * Candidate enumeration for the DSE framework (§5.3.3): tile-size menus,
 * loop orders, stationarities, FLAT-tile granularities and staging-flag
 * combinations. Each combination is one design point (Figure 6(a)).
 */
#ifndef FLAT_DSE_CANDIDATES_H
#define FLAT_DSE_CANDIDATES_H

#include <cstdint>
#include <vector>

#include "arch/accel_config.h"
#include "dataflow/fused_dataflow.h"
#include "dataflow/tiling.h"
#include "workload/gemm_shape.h"

namespace flat {

/** Knobs bounding the enumeration (defaults give a ~10^5-point space). */
struct CandidateOptions {
    /** Fractions of the SG used as budgets for the L2 tile menu. */
    std::vector<double> tile_budget_fractions = {1.0 / 16, 1.0 / 4,
                                                 1.0 / 2};

    /** Row-tile candidates for R-Gran (clamped to the sequence length
     *  and deduplicated). Empty => derived from the PE array. */
    std::vector<std::uint64_t> row_candidates;

    /** Column-tile candidates for C-Gran (clamped to the key/value
     *  length and deduplicated). Empty => derived from the PE array.
     *  Only column-streaming styles (flash) consume these. */
    std::vector<std::uint64_t> col_candidates;

    /** Loop orders tried per stage (empty => a pruned default set). */
    std::vector<LoopOrder> loop_orders;

    /** Stationarities tried per stage (empty => all three). */
    std::vector<Stationarity> stationarities;

    /** Include all 32 staging-flag combinations; when false only the
     *  all-enabled setting is used. */
    bool sweep_stage_flags = true;
};

/** Deduplicated L2-tile menu for @p shape on @p accel. */
std::vector<L2Tile> tile_candidates(const AccelConfig& accel,
                                    const GemmShape& shape,
                                    const CandidateOptions& options,
                                    Stationarity stationarity);

/** Row-tile (R) candidates for @p accel and query length @p q_len. */
std::vector<std::uint64_t> row_tile_candidates(
    const AccelConfig& accel, std::uint64_t q_len,
    const CandidateOptions& options);

/** Cross-loop candidates: M, B, H and R with every row candidate.
 *  @p include_row is false for baseline (sequential) spaces. */
std::vector<CrossLoop> cross_loop_candidates(const AccelConfig& accel,
                                             std::uint64_t q_len,
                                             const CandidateOptions& opt,
                                             bool include_row);

/** Column-tile (C) candidates for @p accel and kv length @p kv_len. */
std::vector<std::uint64_t> col_tile_candidates(
    const AccelConfig& accel, std::uint64_t kv_len,
    const CandidateOptions& options);

/** C-Gran cross-loop candidates: every (row tile, column tile) pair.
 *  Styles decide admissibility (register-tier capacity) themselves;
 *  this enumerates the raw menu. */
std::vector<CrossLoop> column_cross_candidates(const AccelConfig& accel,
                                               std::uint64_t q_len,
                                               std::uint64_t kv_len,
                                               const CandidateOptions& opt);

/** The loop orders to try (pruned default keeps the reduction loop
 *  innermost plus one alternative). */
std::vector<LoopOrder> loop_order_candidates(const CandidateOptions& opt);

/** The stationarities to try. */
std::vector<Stationarity> stationarity_candidates(
    const CandidateOptions& opt);

/** Staging-flag combinations (all 32, or just all-enabled). */
std::vector<FusedStageFlags> stage_flag_candidates(
    const CandidateOptions& opt);

} // namespace flat

#endif // FLAT_DSE_CANDIDATES_H

#include "dse/search.h"

#include <limits>

#include "common/logging.h"
#include "common/status.h"

namespace flat {
namespace {

CandidateOptions
effective_candidates(const CandidateOptions& base, bool quick)
{
    if (!quick) {
        return base;
    }
    CandidateOptions opt = base;
    if (opt.tile_budget_fractions.size() > 2) {
        opt.tile_budget_fractions = {1.0 / 4, 1.0 / 2};
    }
    if (opt.loop_orders.empty()) {
        opt.loop_orders = {LoopOrder::kMNK};
    }
    if (opt.stationarities.empty()) {
        // Output-stationary plus input-stationary: the latter is needed
        // to fill wide arrays when the GEMM's n dimension is small
        // (e.g. Attend with n = dk < array columns).
        opt.stationarities = {Stationarity::kOutputStationary,
                              Stationarity::kInputStationary};
    }
    return opt;
}

/** Calls @p visit for every dataflow in the (restricted) space. */
template <typename Visit>
void
enumerate_attention_space(const AccelConfig& accel,
                          const AttentionDims& dims,
                          const AttentionSearchOptions& options,
                          Visit&& visit)
{
    const CandidateOptions cand =
        effective_candidates(options.candidates, options.quick);

    std::vector<CrossLoop> crosses;
    if (options.fixed_cross.has_value()) {
        crosses.push_back(*options.fixed_cross);
    } else {
        crosses = cross_loop_candidates(accel, dims.q_len, cand,
                                        /*include_row=*/options.fused);
    }

    std::vector<FusedStageFlags> flag_sets;
    if (options.fixed_flags.has_value()) {
        flag_sets.push_back(*options.fixed_flags);
    } else {
        flag_sets = stage_flag_candidates(cand);
    }

    const std::vector<LoopOrder> orders = loop_order_candidates(cand);
    const std::vector<Stationarity> stats = stationarity_candidates(cand);

    for (const CrossLoop& cross : crosses) {
        if (!options.fused && cross.granularity == Granularity::kRow) {
            continue; // the sequential baseline cannot run row chunks
        }
        const CrossLoopExtent extent = cross_loop_extent(
            cross, dims.batch, dims.heads, dims.q_len);

        // Stage GEMM shapes for tile-menu generation.
        GemmShape logit_shape;
        logit_shape.m = extent.rows_per_pass;
        logit_shape.k = dims.head_dim;
        logit_shape.n = dims.kv_len;
        GemmShape attend_shape;
        attend_shape.m = extent.rows_per_pass;
        attend_shape.k = dims.kv_len;
        attend_shape.n = dims.head_dim;

        for (Stationarity stat_l : stats) {
            const std::vector<L2Tile> tiles_l =
                tile_candidates(accel, logit_shape, cand, stat_l);
            for (Stationarity stat_a : stats) {
                const std::vector<L2Tile> tiles_a =
                    tile_candidates(accel, attend_shape, cand, stat_a);
                for (const L2Tile& tile_l : tiles_l) {
                    for (const L2Tile& tile_a : tiles_a) {
                        for (LoopOrder order_l : orders) {
                            for (LoopOrder order_a : orders) {
                                for (const FusedStageFlags& flags :
                                     flag_sets) {
                                    FusedDataflow df;
                                    df.cross = cross;
                                    df.l2_logit = tile_l;
                                    df.order_logit = order_l;
                                    df.stat_logit = stat_l;
                                    df.l2_attend = tile_a;
                                    df.order_attend = order_a;
                                    df.stat_attend = stat_a;
                                    df.stage = flags;
                                    visit(df);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

} // namespace

double
DsePoint::objective_value(Objective objective) const
{
    switch (objective) {
      case Objective::kRuntime:
        return cost.cycles;
      case Objective::kEnergy:
        return energy_j;
      case Objective::kEdp:
        return cost.cycles * energy_j;
    }
    return cost.cycles;
}

AttentionSearchResult
search_attention(const AccelConfig& accel, const AttentionDims& dims,
                 const AttentionSearchOptions& options)
{
    accel.validate();
    dims.validate();
    const EnergyTable energy_table = EnergyTable::for_accel(accel);

    AttentionSearchResult result;
    double best_value = std::numeric_limits<double>::infinity();

    enumerate_attention_space(
        accel, dims, options, [&](const FusedDataflow& df) {
            const OperatorCost cost =
                options.fused
                    ? model_flat_attention(accel, dims, df)
                    : model_baseline_attention(accel, dims, df,
                                               options.baseline_overlap);
            DsePoint point;
            point.dataflow = df;
            point.cost = cost;
            point.energy_j =
                estimate_energy(energy_table, cost.activity).total();
            ++result.evaluated;
            const double value = point.objective_value(options.objective);
            if (value < best_value) {
                best_value = value;
                result.best = point;
                result.found = true;
            }
        });

    FLAT_CHECK(result.found, "attention DSE evaluated an empty space");
    return result;
}

std::vector<DsePoint>
explore_attention(const AccelConfig& accel, const AttentionDims& dims,
                  const AttentionSearchOptions& options,
                  std::size_t max_points)
{
    accel.validate();
    dims.validate();
    const EnergyTable energy_table = EnergyTable::for_accel(accel);

    std::vector<DsePoint> points;
    enumerate_attention_space(
        accel, dims, options, [&](const FusedDataflow& df) {
            if (max_points != 0 && points.size() >= max_points) {
                return;
            }
            DsePoint point;
            point.dataflow = df;
            point.cost =
                options.fused
                    ? model_flat_attention(accel, dims, df)
                    : model_baseline_attention(accel, dims, df,
                                               options.baseline_overlap);
            point.energy_j =
                estimate_energy(energy_table, point.cost.activity).total();
            points.push_back(std::move(point));
        });
    return points;
}

OperatorSearchResult
search_operator(const AccelConfig& accel, const Operator& op,
                const OperatorSearchOptions& options)
{
    accel.validate();
    FLAT_CHECK(op.kind == OpKind::kGemm,
               op.name << ": operator DSE only covers GEMMs");
    const CandidateOptions cand =
        effective_candidates(options.candidates, options.quick);
    const EnergyTable energy_table = EnergyTable::for_accel(accel);

    OperatorSearchResult result;
    double best_value = std::numeric_limits<double>::infinity();

    const std::vector<LoopOrder> orders = loop_order_candidates(cand);
    const std::vector<Stationarity> stats = stationarity_candidates(cand);

    // L3 staging combinations for a single operator: none, or any of the
    // 8 per-tensor subsets (only meaningful when allowed).
    std::vector<L3StageFlags> l3_sets;
    l3_sets.push_back(L3StageFlags{});
    if (options.allow_l3) {
        for (std::uint32_t code = 1; code < 8; ++code) {
            l3_sets.push_back(L3StageFlags{(code & 1) != 0,
                                           (code & 2) != 0,
                                           (code & 4) != 0});
        }
    }

    for (Stationarity stat : stats) {
        const std::vector<L2Tile> tiles =
            tile_candidates(accel, op.gemm, cand, stat);
        for (const L2Tile& tile : tiles) {
            for (LoopOrder order : orders) {
                for (const L3StageFlags& l3 : l3_sets) {
                    OperatorDataflow df;
                    df.l2 = tile;
                    df.order = order;
                    df.stationarity = stat;
                    df.l3 = l3;
                    df.cross = {Granularity::kMulti, 0};

                    const OperatorCost cost =
                        model_gemm_operator(accel, op, df);
                    const double energy =
                        estimate_energy(energy_table, cost.activity)
                            .total();
                    ++result.evaluated;

                    double value = cost.cycles;
                    if (options.objective == Objective::kEnergy) {
                        value = energy;
                    } else if (options.objective == Objective::kEdp) {
                        value = cost.cycles * energy;
                    }
                    if (value < best_value) {
                        best_value = value;
                        result.dataflow = df;
                        result.cost = cost;
                        result.energy_j = energy;
                        result.found = true;
                    }
                }
            }
        }
    }
    FLAT_CHECK(result.found, "operator DSE evaluated an empty space");
    return result;
}

} // namespace flat

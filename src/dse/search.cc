#include "dse/search.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <map>
#include <numeric>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>

#include "common/cancellation.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/run_journal.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "costmodel/eval_cache.h"
#include "costmodel/gemm_engine.h"
#include "dse/analytic_mapper.h"
#include "dse/search_internal.h"

namespace flat {
namespace detail {

CandidateOptions
effective_candidates(const CandidateOptions& base, bool quick)
{
    if (!quick) {
        return base;
    }
    CandidateOptions opt = base;
    if (opt.tile_budget_fractions.size() > 2) {
        opt.tile_budget_fractions = {1.0 / 4, 1.0 / 2};
    }
    if (opt.loop_orders.empty()) {
        opt.loop_orders = {LoopOrder::kMNK};
    }
    if (opt.stationarities.empty()) {
        // Output-stationary plus input-stationary: the latter is needed
        // to fill wide arrays when the GEMM's n dimension is small
        // (e.g. Attend with n = dk < array columns).
        opt.stationarities = {Stationarity::kOutputStationary,
                              Stationarity::kInputStationary};
    }
    return opt;
}

std::vector<const ExecutionStyle*>
resolve_styles(const AttentionSearchOptions& options)
{
    std::vector<const ExecutionStyle*> out;
    const auto push = [&](const ExecutionStyle* style) {
        if (std::find(out.begin(), out.end(), style) == out.end()) {
            out.push_back(style);
        }
    };
    if (options.styles.empty()) {
        push(&default_execution_style(options.fused));
        return out;
    }
    for (const std::string& name : options.styles) {
        if (to_lower(name) == "all") {
            for (const ExecutionStyle* style : execution_styles()) {
                push(style);
            }
            continue;
        }
        const ExecutionStyle* style = find_execution_style(name);
        FLAT_CHECK(style != nullptr,
                   "unknown execution style '"
                       << name << "' (see --list-styles for the "
                       << "registered ids)");
        push(style);
    }
    return out;
}

std::pair<GemmShape, GemmShape>
stage_shapes(const AttentionDims& dims, const CrossLoop& cross,
             const CrossLoopExtent& extent)
{
    const std::uint64_t kv_tile = cross_col_tile(cross, dims.kv_len);
    GemmShape logit_shape;
    logit_shape.m = extent.rows_per_pass;
    logit_shape.k = dims.head_dim;
    logit_shape.n = kv_tile;
    GemmShape attend_shape;
    attend_shape.m = extent.rows_per_pass;
    attend_shape.k = kv_tile;
    attend_shape.n = dims.head_dim;
    return {logit_shape, attend_shape};
}

SlicedSpace
build_sliced_space(const AccelConfig& accel, const AttentionDims& dims,
                   const AttentionSearchOptions& options)
{
    const CandidateOptions cand =
        effective_candidates(options.candidates, options.quick);
    const std::vector<const ExecutionStyle*> styles =
        resolve_styles(options);

    // One raw cross-loop menu covering every granularity; each style
    // keeps the crosses its admits() accepts. The shared menu keeps
    // the slice order (and hence journal keys and the reduction order)
    // independent of which styles run.
    std::vector<CrossLoop> crosses;
    if (options.fixed_cross.has_value()) {
        crosses.push_back(*options.fixed_cross);
    } else {
        crosses = cross_loop_candidates(accel, dims.q_len, cand,
                                        /*include_row=*/true);
        const std::vector<CrossLoop> columns = column_cross_candidates(
            accel, dims.q_len, dims.kv_len, cand);
        crosses.insert(crosses.end(), columns.begin(), columns.end());
    }

    SlicedSpace space;
    if (options.fixed_flags.has_value()) {
        space.flag_sets.push_back(*options.fixed_flags);
    } else {
        space.flag_sets = stage_flag_candidates(cand);
    }
    space.orders = loop_order_candidates(cand);
    const std::vector<Stationarity> stats = stationarity_candidates(cand);

    const auto menu = [&](const GemmShape& shape, Stationarity stat)
        -> const std::vector<L2Tile>* {
        const auto key = std::make_tuple(shape.m, shape.k, shape.n,
                                         static_cast<int>(stat));
        auto it = space.tile_menus.find(key);
        if (it == space.tile_menus.end()) {
            it = space.tile_menus
                     .emplace(key,
                              EvalCache::instance().tile_menu(
                                  accel, shape,
                                  cand.tile_budget_fractions, stat,
                                  [&] {
                                      return tile_candidates(accel, shape,
                                                             cand, stat);
                                  }))
                     .first;
        }
        return it->second.get();
    };

    for (const ExecutionStyle* style : styles) {
        for (const CrossLoop& cross : crosses) {
            if (!style->admits(accel, dims, cross)) {
                continue; // illegal granularity (or capacity) for it
            }
            const CrossLoopExtent extent = cross_loop_extent(
                cross, dims.batch, dims.heads, dims.q_len);
            const auto [logit_shape, attend_shape] =
                stage_shapes(dims, cross, extent);
            for (Stationarity stat_l : stats) {
                const std::vector<L2Tile>* tiles_l =
                    menu(logit_shape, stat_l);
                for (Stationarity stat_a : stats) {
                    SearchSlice slice;
                    slice.style = style;
                    slice.cross = cross;
                    slice.extent = extent;
                    slice.logit_shape = logit_shape;
                    slice.attend_shape = attend_shape;
                    slice.stat_logit = stat_l;
                    slice.stat_attend = stat_a;
                    slice.tiles_logit = tiles_l;
                    slice.tiles_attend = menu(attend_shape, stat_a);
                    space.slices.push_back(slice);
                }
            }
        }
    }
    return space;
}

/**
 * Visits every design point of @p slice in the deterministic serial
 * order. @p visit receives the dataflow plus the (tile, order) indices
 * of both stages (so callers can address per-slice caches) and returns
 * false to stop the slice early.
 */
template <typename Visit>
void
for_each_slice_point(const SearchSlice& slice,
                     const std::vector<LoopOrder>& orders,
                     const std::vector<FusedStageFlags>& flag_sets,
                     Visit&& visit)
{
    // Loop orders vary innermost: consecutive points then differ only
    // in the order axes, so the evaluator's plan-base memo (see
    // AttentionEvalScratch) hits on all but the first point of each
    // (tiles, flags) block. Enumeration order is otherwise free — the
    // search's total order on candidates and the capped-explore
    // prefix semantics are both self-consistent under any fixed order.
    const std::vector<L2Tile>& tiles_l = *slice.tiles_logit;
    const std::vector<L2Tile>& tiles_a = *slice.tiles_attend;
    for (std::size_t tl = 0; tl < tiles_l.size(); ++tl) {
        for (std::size_t ta = 0; ta < tiles_a.size(); ++ta) {
            for (const FusedStageFlags& flags : flag_sets) {
                for (std::size_t ol = 0; ol < orders.size(); ++ol) {
                    for (std::size_t oa = 0; oa < orders.size(); ++oa) {
                        FusedDataflow df;
                        df.cross = slice.cross;
                        df.l2_logit = tiles_l[tl];
                        df.order_logit = orders[ol];
                        df.stat_logit = slice.stat_logit;
                        df.l2_attend = tiles_a[ta];
                        df.order_attend = orders[oa];
                        df.stat_attend = slice.stat_attend;
                        df.stage = flags;
                        if (!visit(df, tl, ta, ol, oa)) {
                            return;
                        }
                    }
                }
            }
        }
    }
}

SliceBound
make_slice_bound(const AccelConfig& accel, const AttentionDims& dims,
                 const EnergyTable& energy_table, const SearchSlice& slice,
                 const std::vector<LoopOrder>& orders)
{
    SliceBound bound;
    bound.style = slice.style;
    bound.slices_count = static_cast<double>(slice.extent.passes) *
                         static_cast<double>(slice.extent.instances_per_pass);
    const double col_blocks = static_cast<double>(
        cross_col_blocks(slice.cross, dims.kv_len));
    if (slice.cross.granularity == Granularity::kColumn) {
        // C-Gran streams kv in blocks: the staged shapes cover one
        // block, so the per-slice GEMM costs repeat per block.
        bound.slices_count *= col_blocks;
    }
    const double bpe = accel.bytes_per_element;
    const double bh =
        static_cast<double>(dims.batch) * static_cast<double>(dims.heads);
    const double inter_elems = bh * static_cast<double>(dims.q_len) *
                               static_cast<double>(dims.kv_len);
    const double q_bytes =
        bh * dims.q_len * dims.head_dim * bpe;
    const double k_bytes =
        bh * dims.kv_len * dims.head_dim * bpe;
    const double softmax_cycles = inter_elems / accel.sfu_lanes;
    const double cold_start =
        (q_bytes + k_bytes) /
        (bound.slices_count > 0.0 ? bound.slices_count : 1.0) /
        accel.offchip_bytes_per_cycle();
    bound.softmax_plus_cold = softmax_cycles + cold_start;
    // Online-softmax rescale work: every column block after the first
    // rescales the output accumulator. The model ledgers at least this
    // much (partial passes round up there), so the bound stays below.
    const double rescale_elems =
        (col_blocks - 1.0) * bh * static_cast<double>(dims.q_len) *
        static_cast<double>(dims.head_dim);
    bound.rescale_cycles = rescale_elems / accel.sfu_lanes;

    const double macs = static_cast<double>(attention_macs(dims));
    bound.fixed_energy_j = (macs * energy_table.mac_pj +
                            3.0 * macs * energy_table.sl_access_pj +
                            inter_elems * energy_table.sfu_op_pj +
                            rescale_elems * energy_table.sfu_op_pj) *
                           1e-12;
    // The softmax phase of the SG-staged styles ledgers one
    // intermediate pass in both SG directions on top of the array
    // streaming volume; flash keeps the intermediate in the register
    // tier and its hook returns zero.
    bound.inter_sg_bytes =
        slice.style->inter_sg_round_trip_bytes(inter_elems * bpe);
    bound.sg_pj_per_byte = energy_table.sg_pj_per_byte;

    bound.logit_costs = EvalCache::instance().gemm_costs(
        accel, slice.logit_shape, *slice.tiles_logit, orders,
        slice.stat_logit);
    bound.attend_costs = EvalCache::instance().gemm_costs(
        accel, slice.attend_shape, *slice.tiles_attend, orders,
        slice.stat_attend);
    return bound;
}

std::string
search_space_canonical(const AccelConfig& accel,
                       const AttentionDims& dims,
                       const AttentionSearchOptions& options)
{
    std::ostringstream text;
    text << "accel " << accel.name << ' ' << accel.pe_rows << 'x'
         << accel.pe_cols << " sl=" << accel.sl_bytes
         << " sg=" << accel.sg_bytes << " sg2=" << accel.sg2_bytes
         << '@' << accel.sg2_bw << " rf=" << accel.rf_bytes
         << " dram=" << accel.dram_bytes << " on=" << accel.onchip_bw
         << " off=" << accel.offchip_bw << " clk=" << accel.clock_hz
         << " sfu=" << accel.sfu_lanes
         << " bpe=" << accel.bytes_per_element
         << " noc=" << static_cast<int>(accel.distribution_noc) << '/'
         << static_cast<int>(accel.reduction_noc)
         << " caps=" << accel.caps.flexible_intra_dataflow
         << accel.caps.l3_tiling << accel.caps.fused_execution << '\n';
    text << "dims " << dims.batch << ' ' << dims.heads << ' '
         << dims.q_len << ' ' << dims.kv_len << ' ' << dims.head_dim
         << " kvh=" << dims.kv_heads_eff()
         << " decode=" << dims.decode << '\n';
    text << "opt obj=" << static_cast<int>(options.objective)
         << " fused=" << options.fused << " cross="
         << (options.fixed_cross.has_value() ? options.fixed_cross->tag()
                                             : std::string("*"))
         << " flags="
         << (options.fixed_flags.has_value()
                 ? std::to_string(
                       FusedStageFlags::encode(*options.fixed_flags))
                 : std::string("*"))
         << " quick=" << options.quick
         << " overlap=" << static_cast<int>(options.baseline_overlap);
    if (options.mode != SearchMode::kExhaustive) {
        // Appended only for the new modes so every exhaustive scope
        // hash (and thus every pre-existing journal) stays valid.
        text << " mode=" << to_string(options.mode);
    }
    text << " styles=";
    for (const ExecutionStyle* style : resolve_styles(options)) {
        text << style->id() << ',';
    }
    text << '\n';
    const CandidateOptions& cand = options.candidates;
    text << "cand budgets=";
    for (const double f : cand.tile_budget_fractions) {
        text << f << ',';
    }
    text << " rows=";
    for (const std::uint64_t r : cand.row_candidates) {
        text << r << ',';
    }
    text << " cols=";
    for (const std::uint64_t c : cand.col_candidates) {
        text << c << ',';
    }
    text << " orders=";
    for (const LoopOrder o : cand.loop_orders) {
        text << static_cast<int>(o) << ',';
    }
    text << " stats=";
    for (const Stationarity s : cand.stationarities) {
        text << static_cast<int>(s) << ',';
    }
    text << " flags=" << cand.sweep_stage_flags;
    return text.str();
}

std::string
search_scope_key(const AccelConfig& accel, const AttentionDims& dims,
                 const AttentionSearchOptions& options)
{
    return strprintf("search:%016llx",
                     static_cast<unsigned long long>(fnv1a64(
                         search_space_canonical(accel, dims, options))));
}

std::string
slice_journal_key(const SearchSlice& slice)
{
    return strprintf("%s/%s/%s/%s", slice.style->id(),
                     slice.cross.tag().c_str(),
                     to_string(slice.stat_logit).c_str(),
                     to_string(slice.stat_attend).c_str());
}

std::string
candidate_tag(const ExecutionStyle& style, const FusedDataflow& df)
{
    std::string tag = style.id();
    tag += '/';
    tag += df.tag();
    return tag;
}

std::string
encode_slice_outcome(const SliceOutcome& out)
{
    JsonWriter json;
    json.begin_object();
    json.field("found", out.found);
    json.field("evaluated", static_cast<std::uint64_t>(out.evaluated));
    json.field("pruned", static_cast<std::uint64_t>(out.pruned));
    if (out.found) {
        const FusedDataflow& df = out.best.dataflow;
        json.key("df");
        json.begin_object();
        json.field("gran",
                   static_cast<std::uint64_t>(df.cross.granularity));
        json.field("rows", df.cross.rows);
        json.field("cols", df.cross.cols);
        json.field("lm", df.l2_logit.m);
        json.field("lk", df.l2_logit.k);
        json.field("ln", df.l2_logit.n);
        json.field("lo", static_cast<std::uint64_t>(df.order_logit));
        json.field("am", df.l2_attend.m);
        json.field("ak", df.l2_attend.k);
        json.field("an", df.l2_attend.n);
        json.field("ao", static_cast<std::uint64_t>(df.order_attend));
        json.field("stage", static_cast<std::uint64_t>(
                                FusedStageFlags::encode(df.stage)));
        json.end_object();
    }
    json.end_object();
    return json.str();
}

SliceOutcome
restore_slice_outcome(const JsonValue& data, const AccelConfig& accel,
                      const AttentionDims& dims,
                      const AttentionSearchOptions& options,
                      const SearchSlice& slice,
                      const EnergyTable& energy_table)
{
    SliceOutcome out;
    out.evaluated =
        static_cast<std::size_t>(data.member_u64("evaluated"));
    out.pruned = static_cast<std::size_t>(data.member_u64("pruned"));
    if (!data.member_bool("found")) {
        return out;
    }
    const JsonValue* df_json = data.find("df");
    FLAT_CHECK(df_json != nullptr,
               "journaled slice record has found=true but no dataflow");
    FusedDataflow df;
    df.cross.granularity =
        static_cast<Granularity>(df_json->member_u64("gran"));
    df.cross.rows = df_json->member_u64("rows");
    df.cross.cols = df_json->member_u64("cols");
    df.l2_logit.m = df_json->member_u64("lm");
    df.l2_logit.k = df_json->member_u64("lk");
    df.l2_logit.n = df_json->member_u64("ln");
    df.order_logit =
        static_cast<LoopOrder>(df_json->member_u64("lo"));
    df.stat_logit = slice.stat_logit;
    df.l2_attend.m = df_json->member_u64("am");
    df.l2_attend.k = df_json->member_u64("ak");
    df.l2_attend.n = df_json->member_u64("an");
    df.order_attend =
        static_cast<LoopOrder>(df_json->member_u64("ao"));
    df.stat_attend = slice.stat_attend;
    df.stage = FusedStageFlags::decode(
        static_cast<std::uint32_t>(df_json->member_u64("stage")));
    df.validate();

    AttentionEvalScratch scratch;
    scratch.timeline.summary_only = true;
    out.best.dataflow = df;
    out.best.style = slice.style;
    out.best.cost = model_attention(*slice.style, accel, dims, df,
                                    options.baseline_overlap, scratch);
    out.best.energy_j =
        estimate_energy(energy_table, out.best.cost.activity).total();
    out.value = objective_value(options.objective, out.best.cost.cycles,
                                out.best.energy_j);
    out.tag = candidate_tag(*slice.style, df);
    out.found = true;
    return out;
}

} // namespace detail

using namespace detail;

double
objective_value(Objective objective, double cycles, double energy_j)
{
    switch (objective) {
      case Objective::kRuntime:
        return cycles;
      case Objective::kEnergy:
        return energy_j;
      case Objective::kEdp:
        return cycles * energy_j;
    }
    return cycles;
}

Objective
parse_objective(const std::string& name)
{
    const std::string key = to_lower(name);
    if (key == "runtime") {
        return Objective::kRuntime;
    }
    if (key == "energy") {
        return Objective::kEnergy;
    }
    if (key == "edp") {
        return Objective::kEdp;
    }
    FLAT_FAIL("unknown objective '" << name
                                    << "' (runtime | energy | edp)");
}

SearchMode
parse_search_mode(const std::string& name)
{
    std::string key = to_lower(name);
    std::replace(key.begin(), key.end(), '_', '-');
    if (key == "exhaustive") {
        return SearchMode::kExhaustive;
    }
    if (key == "analytic") {
        return SearchMode::kAnalytic;
    }
    if (key == "analytic-verified") {
        return SearchMode::kAnalyticVerified;
    }
    FLAT_FAIL("unknown search mode '"
              << name << "' (exhaustive | analytic | analytic-verified)");
}

const char*
to_string(SearchMode mode)
{
    switch (mode) {
      case SearchMode::kExhaustive:
        return "exhaustive";
      case SearchMode::kAnalytic:
        return "analytic";
      case SearchMode::kAnalyticVerified:
        return "analytic-verified";
    }
    return "exhaustive";
}

double
DsePoint::objective_value(Objective objective) const
{
    return flat::objective_value(objective, cost.cycles, energy_j);
}

AttentionSearchResult
search_attention(const AccelConfig& accel, const AttentionDims& dims,
                 const AttentionSearchOptions& options)
{
    // The fault probe guards the public entry, whatever the mode: the
    // robustness suite injects here to exercise every caller's error
    // and cancellation paths, and those callers don't know (or care)
    // which mode prices their search.
    FLAT_FAULT_POINT("dse.search_attention");
    if (options.mode != SearchMode::kExhaustive) {
        // Same space, same deterministic reduction, ~2 orders of
        // magnitude fewer exact evaluations; kAnalyticVerified also
        // runs the exhaustive sweep (through this entry, with the mode
        // reset) and reports the objective ratio.
        return analytic_search_attention(accel, dims, options);
    }
    accel.validate();
    dims.validate();
    const EnergyTable energy_table = EnergyTable::for_accel(accel);
    const SlicedSpace space = build_sliced_space(accel, dims, options);

    // Per-slice pruning bounds, precomputed up front (each is one or
    // two cache probes plus a handful of arithmetic; the grain batches
    // the tiny tasks so scheduling atomics do not dominate). Small
    // spaces — quick menus, policy-pinned searches, the per-point
    // searches of broad sweeps — compute them inline: waking the pool
    // costs more than the work, and the bounds are deterministic
    // either way.
    std::vector<SliceBound> bounds(space.slices.size());
    const auto fill_bound = [&](std::size_t si) {
        bounds[si] = make_slice_bound(accel, dims, energy_table,
                                      space.slices[si], space.orders);
    };
    if (space.slices.size() <= 64) {
        for (std::size_t si = 0; si < space.slices.size(); ++si) {
            fill_bound(si);
        }
    } else {
        parallel_for(space.slices.size(), options.threads, fill_bound,
                     /*grain=*/4);
    }

    // Schedule slices by ascending lower bound: promising slices run
    // first, the shared incumbent drops early, and the worse-bounded
    // tail prunes harder. The reduction below walks outcomes in the
    // ORIGINAL slice order, so the schedule cannot change the result —
    // pruning skips only points strictly worse than the final optimum.
    std::vector<double> priority(space.slices.size());
    for (std::size_t si = 0; si < space.slices.size(); ++si) {
        const SliceBound& bound = bounds[si];
        double best_lb = std::numeric_limits<double>::infinity();
        for (std::size_t li = 0; li < bound.logit_costs->size(); ++li) {
            for (std::size_t ai = 0; ai < bound.attend_costs->size();
                 ++ai) {
                best_lb = std::min(
                    best_lb,
                    bound.lower_bound(options.objective, li, ai));
            }
        }
        priority[si] = best_lb;
    }
    // Best objective value seen by ANY thread. Pruning compares against
    // it with a strict >, so a skipped point is strictly worse than the
    // final optimum and can never win, not even on the tag tie-break.
    std::atomic<double> shared_best{
        std::numeric_limits<double>::infinity()};
    std::vector<SliceOutcome> outcomes(space.slices.size());

    // Checkpoint restore: slices already in the journal are rebuilt
    // instead of searched, and their incumbents seed the shared bound
    // so pending slices prune as if the restored ones had just run.
    std::string journal_scope;
    std::vector<char> slice_restored(space.slices.size(), 0);
    if (options.journal != nullptr) {
        journal_scope = search_scope_key(accel, dims, options);
        for (std::size_t si = 0; si < space.slices.size(); ++si) {
            const JsonValue* rec = options.journal->find(
                journal_scope, slice_journal_key(space.slices[si]));
            if (rec == nullptr) {
                continue;
            }
            outcomes[si] = restore_slice_outcome(*rec, accel, dims,
                                                 options,
                                                 space.slices[si],
                                                 energy_table);
            slice_restored[si] = 1;
            if (outcomes[si].found) {
                update_shared_best(shared_best, outcomes[si].value);
            }
        }
    }

    std::vector<std::size_t> schedule;
    schedule.reserve(space.slices.size());
    for (std::size_t si = 0; si < space.slices.size(); ++si) {
        if (slice_restored[si] == 0) {
            schedule.push_back(si);
        }
    }
    std::stable_sort(schedule.begin(), schedule.end(),
                     [&](std::size_t a, std::size_t b) {
                         return priority[a] < priority[b];
                     });

    parallel_for(
        schedule.size(), options.threads, [&](std::size_t k) {
            const std::size_t si = schedule[k];
            const SearchSlice& slice = space.slices[si];
            SliceOutcome& out = outcomes[si];
            const SliceBound& bound = bounds[si];
            const std::size_t n_orders = space.orders.size();
            const std::vector<GemmSliceCost>& logit_costs =
                *bound.logit_costs;
            const std::vector<GemmSliceCost>& attend_costs =
                *bound.attend_costs;
            // Worker-lifetime evaluation state: the pool threads are
            // persistent, so scratch buffers, the batch evaluator and
            // the lane book-keeping all reach allocation-free steady
            // state across slices AND searches (the plan-base memo
            // re-validates itself against every input it depends on,
            // so reuse cannot leak state between searches).
            thread_local AttentionEvalScratch scratch;
            thread_local AttentionBatchEvaluator batch;
            // The DSE reads only the scalar cost summary; skip the
            // per-phase timing fill inside the evaluator.
            scratch.timeline.summary_only = true;

            // Batched walk of the slice: the loop-order axes of each
            // (tiles, flags) block — the innermost, plan-base-sharing
            // axes — are buffered as lanes and evaluated SoA-style.
            // Enumeration and improvement order match the scalar
            // for_each_slice_point walk exactly, so the outcome is
            // bit-identical at any width; pruning happens at add time
            // against the incumbent the block started with (a flush
            // refreshes it), which only shifts the evaluated/pruned
            // split, never the result.
            const std::size_t width = options.batch_width > 0
                                          ? options.batch_width
                                          : n_orders * n_orders;
            struct LaneMeta {
                std::size_t ol;
                std::size_t oa;
            };
            thread_local std::vector<LaneMeta> lane_meta;
            lane_meta.clear();
            lane_meta.reserve(width);

            const std::vector<L2Tile>& tiles_l = *slice.tiles_logit;
            const std::vector<L2Tile>& tiles_a = *slice.tiles_attend;
            FusedDataflow df;
            df.cross = slice.cross;
            df.stat_logit = slice.stat_logit;
            df.stat_attend = slice.stat_attend;

            const auto flush = [&]() {
                if (batch.lanes() == 0) {
                    return;
                }
                batch.evaluate();
                for (std::size_t i = 0; i < batch.lanes(); ++i) {
                    ++out.evaluated;
                    const double energy =
                        estimate_energy(energy_table, batch.activity(i))
                            .total();
                    const double value = objective_value(
                        options.objective, batch.cycles(i), energy);
                    if (value <= out.value) {
                        // Tag construction is deferred to the rare
                        // improves/ties path; strictly worse points
                        // never pay for it.
                        df.order_logit = space.orders[lane_meta[i].ol];
                        df.order_attend = space.orders[lane_meta[i].oa];
                        const std::string tag =
                            candidate_tag(*slice.style, df);
                        if (improves(value, tag, out.value, out.tag)) {
                            out.value = value;
                            out.tag = tag;
                            out.best.dataflow = df;
                            out.best.style = slice.style;
                            out.best.cost = batch.cost(i);
                            out.best.energy_j = energy;
                            out.found = true;
                            update_shared_best(shared_best, value);
                        }
                    }
                }
                batch.clear_lanes();
                lane_meta.clear();
            };

            for (std::size_t tl = 0; tl < tiles_l.size(); ++tl) {
                df.l2_logit = tiles_l[tl];
                for (std::size_t ta = 0; ta < tiles_a.size(); ++ta) {
                    df.l2_attend = tiles_a[ta];
                    for (const FusedStageFlags& flags :
                         space.flag_sets) {
                        if (options.cancel != nullptr &&
                            options.cancel->cancelled()) {
                            // Abandon the slice mid-walk: its partial
                            // outcome is never journaled, and the
                            // poll() after the loop turns the
                            // cancellation into CancelledError.
                            return;
                        }
                        df.stage = flags;
                        batch.begin(accel, dims, df, *slice.style,
                                    options.baseline_overlap, width,
                                    scratch);
                        for (std::size_t ol = 0; ol < n_orders; ++ol) {
                            for (std::size_t oa = 0; oa < n_orders;
                                 ++oa) {
                                const std::size_t li =
                                    tl * n_orders + ol;
                                const std::size_t ai =
                                    ta * n_orders + oa;
                                if (options.prune) {
                                    const double lb = bound.lower_bound(
                                        options.objective, li, ai);
                                    if (lb >
                                        shared_best.load(
                                            std::memory_order_relaxed)) {
                                        ++out.pruned;
                                        continue;
                                    }
                                }
                                batch.add(logit_costs[li],
                                          attend_costs[ai],
                                          space.orders[ol],
                                          space.orders[oa]);
                                lane_meta.push_back({ol, oa});
                                if (batch.full()) {
                                    flush();
                                }
                            }
                        }
                        flush(); // lanes left over from this block
                    }
                }
            }
            if (options.journal != nullptr) {
                // Only COMPLETE slices reach this append (cancellation
                // returns early above); workers journal their own
                // slices, so a crash loses at most the unflushed batch.
                options.journal->append(journal_scope,
                                        slice_journal_key(slice),
                                        encode_slice_outcome(out));
            }
        },
        /*grain=*/1, options.cancel);

    if (options.journal != nullptr) {
        options.journal->flush();
    }
    if (options.cancel != nullptr) {
        options.cancel->poll(); // throws CancelledError when tripped
    }

    // Deterministic reduction, in slice order, under the same total
    // order used inside the slices.
    AttentionSearchResult result;
    double best_value = std::numeric_limits<double>::infinity();
    std::string best_tag;
    for (const SliceOutcome& out : outcomes) {
        result.evaluated += out.evaluated;
        result.pruned += out.pruned;
        if (!out.found) {
            continue;
        }
        if (!result.found ||
            improves(out.value, out.tag, best_value, best_tag)) {
            best_value = out.value;
            best_tag = out.tag;
            result.best = out.best;
            result.found = true;
        }
    }
    FLAT_CHECK(result.found, "attention DSE evaluated an empty space");
    return result;
}

std::vector<DsePoint>
explore_attention(const AccelConfig& accel, const AttentionDims& dims,
                  const AttentionSearchOptions& options,
                  std::size_t max_points)
{
    accel.validate();
    dims.validate();
    const EnergyTable energy_table = EnergyTable::for_accel(accel);
    const SlicedSpace space = build_sliced_space(accel, dims, options);

    // Per-slice collection preserves the serial enumeration order when
    // concatenated. Each slice stops once it alone could satisfy the
    // cap (no slice ever needs more than max_points of its prefix), so
    // a small cap no longer walks the entire space.
    std::vector<std::vector<DsePoint>> per_slice(space.slices.size());
    parallel_for(
        space.slices.size(), options.threads, [&](std::size_t si) {
            const SearchSlice& slice = space.slices[si];
            std::vector<DsePoint>& local = per_slice[si];
            AttentionEvalScratch scratch;
            scratch.timeline.summary_only = true;
            for_each_slice_point(
                slice, space.orders, space.flag_sets,
                [&](const FusedDataflow& df, std::size_t, std::size_t,
                    std::size_t, std::size_t) {
                    if (max_points != 0 && local.size() >= max_points) {
                        return false; // stop flag: slice satisfied
                    }
                    DsePoint point;
                    point.dataflow = df;
                    point.style = slice.style;
                    point.cost = model_attention(
                        *slice.style, accel, dims, df,
                        options.baseline_overlap, scratch);
                    point.energy_j =
                        estimate_energy(energy_table,
                                        point.cost.activity)
                            .total();
                    local.push_back(std::move(point));
                    return true;
                });
        });

    std::vector<DsePoint> points;
    for (std::vector<DsePoint>& local : per_slice) {
        for (DsePoint& point : local) {
            if (max_points != 0 && points.size() >= max_points) {
                return points;
            }
            points.push_back(std::move(point));
        }
    }
    return points;
}

OperatorSearchResult
search_operator(const AccelConfig& accel, const Operator& op,
                const OperatorSearchOptions& options)
{
    accel.validate();
    FLAT_CHECK(op.kind == OpKind::kGemm,
               op.name << ": operator DSE only covers GEMMs");
    const CandidateOptions cand =
        effective_candidates(options.candidates, options.quick);
    const EnergyTable energy_table = EnergyTable::for_accel(accel);

    OperatorSearchResult result;
    double best_value = std::numeric_limits<double>::infinity();

    const std::vector<LoopOrder> orders = loop_order_candidates(cand);
    const std::vector<Stationarity> stats = stationarity_candidates(cand);

    // L3 staging combinations for a single operator: none, or any of the
    // 8 per-tensor subsets (only meaningful when allowed).
    std::vector<L3StageFlags> l3_sets;
    l3_sets.push_back(L3StageFlags{});
    if (options.allow_l3) {
        for (std::uint32_t code = 1; code < 8; ++code) {
            l3_sets.push_back(L3StageFlags{(code & 1) != 0,
                                           (code & 2) != 0,
                                           (code & 4) != 0});
        }
    }

    for (Stationarity stat : stats) {
        const EvalCache::TileMenu tiles = EvalCache::instance().tile_menu(
            accel, op.gemm, cand.tile_budget_fractions, stat, [&] {
                return tile_candidates(accel, op.gemm, cand, stat);
            });
        for (const L2Tile& tile : *tiles) {
            if (options.cancel != nullptr) {
                options.cancel->poll();
            }
            for (LoopOrder order : orders) {
                for (const L3StageFlags& l3 : l3_sets) {
                    OperatorDataflow df;
                    df.l2 = tile;
                    df.order = order;
                    df.stationarity = stat;
                    df.l3 = l3;
                    df.cross = {Granularity::kMulti, 0};

                    const OperatorCost cost =
                        model_gemm_operator(accel, op, df);
                    const double energy =
                        estimate_energy(energy_table, cost.activity)
                            .total();
                    ++result.evaluated;

                    const double value = objective_value(
                        options.objective, cost.cycles, energy);
                    if (value < best_value) {
                        best_value = value;
                        result.dataflow = df;
                        result.cost = cost;
                        result.energy_j = energy;
                        result.found = true;
                    }
                }
            }
        }
    }
    FLAT_CHECK(result.found, "operator DSE evaluated an empty space");
    return result;
}

} // namespace flat

/**
 * @file
 * Internals shared by the exhaustive sweep (dse/search.cc) and the
 * analytic mapper (dse/analytic_mapper.cc): the sliced decomposition of
 * the candidate space, the per-slice pruning bound, the slice-outcome
 * journal codec and the deterministic total order on candidates. Both
 * search modes walk the SAME slices in the SAME order and reduce under
 * the SAME order, which is what lets them share journal scaffolding and
 * audit identities (evaluated + pruned == space size). Not installed;
 * include only from dse/ sources and white-box tests.
 */
#ifndef FLAT_DSE_SEARCH_INTERNAL_H
#define FLAT_DSE_SEARCH_INTERNAL_H

#include <atomic>
#include <cstddef>
#include <limits>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/json.h"
#include "costmodel/eval_cache.h"
#include "dse/search.h"
#include "energy/energy_model.h"

namespace flat {
namespace detail {

/** Effective candidate menus after the quick-mode shrink. */
CandidateOptions effective_candidates(const CandidateOptions& base,
                                      bool quick);

/**
 * The styles a search enumerates, in a deterministic order. An empty
 * options.styles resolves to the single style the historical `fused`
 * flag selects, so legacy searches keep their exact space (and journal
 * scope); explicit ids are honored in the given order with duplicates
 * dropped, and "all" expands to the registry.
 */
std::vector<const ExecutionStyle*>
resolve_styles(const AttentionSearchOptions& options);

/**
 * One independent unit of parallel work: a (style, cross-loop, logit
 * stationarity, attend stationarity) slice of the space. Everything a
 * slice iterates over (tiles x orders x staging flags) is enumerated
 * serially inside the owning thread, in a deterministic order.
 */
struct SearchSlice {
    const ExecutionStyle* style = nullptr;
    CrossLoop cross;
    CrossLoopExtent extent;
    GemmShape logit_shape;
    GemmShape attend_shape;
    Stationarity stat_logit = Stationarity::kOutputStationary;
    Stationarity stat_attend = Stationarity::kOutputStationary;
    const std::vector<L2Tile>* tiles_logit = nullptr;
    const std::vector<L2Tile>* tiles_attend = nullptr;
};

/**
 * The sliced search space plus every per-slice invariant hoisted out of
 * the inner loops: tile menus are computed once per (GEMM shape,
 * stationarity) and shared by all slices with that key.
 */
struct SlicedSpace {
    std::vector<LoopOrder> orders;
    std::vector<FusedStageFlags> flag_sets;
    std::vector<SearchSlice> slices;

    /** Keeps the process-wide cache's tile menus alive for the whole
     *  search; keys are (m, k, n, stationarity). The shared_ptr targets
     *  are immutable, so SearchSlice pointers into them stay valid. */
    std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, int>,
             EvalCache::TileMenu>
        tile_menus;

    /** Design points of one slice: tiles x flags x orders^2. The
     *  audit identity both search modes report against. */
    std::size_t slice_points(const SearchSlice& slice) const
    {
        return slice.tiles_logit->size() * slice.tiles_attend->size() *
               flag_sets.size() * orders.size() * orders.size();
    }
};

/** Shapes of the two staged GEMMs for one cross-loop choice. C-Gran
 *  streams kv in column blocks, so its staged shapes cover one block
 *  (cross_col_tile == kv_len everywhere else). */
std::pair<GemmShape, GemmShape>
stage_shapes(const AttentionDims& dims, const CrossLoop& cross,
             const CrossLoopExtent& extent);

/**
 * Decomposes the (restricted) space into slices. Slice order is the
 * serial enumeration order (style outer, then cross, stat_logit,
 * stat_attend), so concatenating per-slice results reproduces the
 * serial walk.
 */
SlicedSpace build_sliced_space(const AccelConfig& accel,
                               const AttentionDims& dims,
                               const AttentionSearchOptions& options);

/**
 * Per-slice ingredients of the pruning lower bound, hoisted out of the
 * point loop. The cycle bound combines the per-slice GEMM aggregates
 * (scaled by the slice count, column blocks included) through the
 * slice's style — ExecutionStyle::bound_cycles() — so each style keeps
 * its own monotone bound: the serial/fused styles add summed GEMM
 * occupancy, softmax and cold start (the timeline's group latency is
 * at least its compute lane under either overlap policy); the
 * pipelined style, whose concurrent tracks can beat that sum, bounds
 * by max(slower stage, softmax); flash adds its online-softmax rescale
 * SFU time. All use the exact model_gemm_compute values the phase
 * emitters consume, so no bound exceeds the modeled cycles. The energy
 * bound keeps only the traffic-independent activity (MACs, SL, SFU,
 * rescale ops) plus the guaranteed SG streaming volume — the style
 * hook drops the intermediate round trip when it lives in the register
 * tier; DRAM/SG2 terms are dropped (>= 0).
 */
struct SliceBound {
    const ExecutionStyle* style = nullptr;
    double slices_count = 1.0;
    double softmax_plus_cold = 0.0; ///< cycles added to every point
    double rescale_cycles = 0.0;    ///< online-softmax rescale (flash)
    double fixed_energy_j = 0.0;    ///< traffic-independent energy
    double inter_sg_bytes = 0.0;    ///< intermediate SG round trip
    double sg_pj_per_byte = 0.0;

    /** Cost record per (tile, order), entry [t * n_orders + o], from
     *  the process-wide evaluation cache (shared across slices, sweep
     *  points and repeated searches). The phase emitters consume these
     *  same records via PlannedGemmCosts, so each point's two
     *  model_gemm_compute and two stage_reuse calls happen at most once
     *  per process. */
    EvalCache::GemmCostTable logit_costs;
    EvalCache::GemmCostTable attend_costs;

    /** Relative slack keeping the bound strictly below the modeled
     *  value even though the timeline evaluator may associate the same
     *  sums differently (a few ULP is all that is at stake; 1e-9 of a
     *  billion-cycle run is one cycle and costs no pruning power). */
    static constexpr double kAssocSlack = 1.0 - 1e-9;

    double lower_bound(Objective objective, std::size_t li,
                       std::size_t ai) const
    {
        const GemmComputeCost& lc = (*logit_costs)[li].compute;
        const GemmComputeCost& ac = (*attend_costs)[ai].compute;
        // Cold start rides in softmax_plus_cold (folded once, up
        // front) so the default style bound reproduces the historical
        // sum bit for bit; the cold argument is therefore zero.
        const double gemm_sum =
            (lc.total_cycles() + ac.total_cycles()) * slices_count;
        const double gemm_max =
            std::max(lc.total_cycles(), ac.total_cycles()) *
            slices_count;
        const double cycles_lb =
            style->bound_cycles(gemm_sum, gemm_max, softmax_plus_cold,
                                0.0, rescale_cycles) *
            kAssocSlack;
        if (objective == Objective::kRuntime) {
            return cycles_lb;
        }
        const double stream_bytes =
            (lc.sg_stream_bytes() + ac.sg_stream_bytes()) * slices_count +
            inter_sg_bytes;
        const double energy_lb =
            (fixed_energy_j + stream_bytes * sg_pj_per_byte * 1e-12) *
            kAssocSlack;
        if (objective == Objective::kEnergy) {
            return energy_lb;
        }
        return cycles_lb * energy_lb; // kEdp
    }
};

SliceBound make_slice_bound(const AccelConfig& accel,
                            const AttentionDims& dims,
                            const EnergyTable& energy_table,
                            const SearchSlice& slice,
                            const std::vector<LoopOrder>& orders);

/** Best point of one slice plus its audit counters. */
struct SliceOutcome {
    DsePoint best;
    double value = std::numeric_limits<double>::infinity();
    std::string tag; ///< tie-break key of the incumbent
    bool found = false;
    std::size_t evaluated = 0;
    std::size_t pruned = 0;
};

/**
 * Canonical text of everything that shapes the search space and its
 * outcome — accelerator resources, attention dims, space restrictions
 * and candidate menus. Execution knobs (threads, prune, batch width)
 * are deliberately EXCLUDED: they never change the returned optimum,
 * so a journal written at one thread count resumes at another. The
 * search MODE is included (non-exhaustive modes only, so historical
 * exhaustive scope hashes are preserved): the analytic mapper journals
 * refined rather than swept slices, and a resume must not mix the two.
 */
std::string search_space_canonical(const AccelConfig& accel,
                                   const AttentionDims& dims,
                                   const AttentionSearchOptions& options);

/** Journal scope of one search: "search:" + space hash. One journal
 *  holds records of every distinct search that ran under it (a sweep
 *  runs one search per point), each in its own scope. */
std::string search_scope_key(const AccelConfig& accel,
                             const AttentionDims& dims,
                             const AttentionSearchOptions& options);

/** Journal key of one slice within a search scope. */
std::string slice_journal_key(const SearchSlice& slice);

/** Tie-break key of a candidate: style id + dataflow tag. Within a
 *  slice the style prefix is constant (so intra-slice comparisons
 *  reduce to the dataflow tag, as before styles existed), but the
 *  prefix makes the final cross-slice reduction a total order even
 *  when two styles share a winning dataflow. */
std::string candidate_tag(const ExecutionStyle& style,
                          const FusedDataflow& df);

/** Serializes a completed slice outcome. Only the winning dataflow's
 *  identity is stored — restore re-runs the cost model on it, which is
 *  cheap, deterministic, and immune to float-formatting drift. */
std::string encode_slice_outcome(const SliceOutcome& out);

/** Rebuilds a slice outcome from its journal record by re-evaluating
 *  the winning dataflow through the cost model. */
SliceOutcome restore_slice_outcome(const JsonValue& data,
                                   const AccelConfig& accel,
                                   const AttentionDims& dims,
                                   const AttentionSearchOptions& options,
                                   const SearchSlice& slice,
                                   const EnergyTable& energy_table);

/**
 * Total order on candidates: lower objective value wins; exact ties go
 * to the lexicographically smallest dataflow tag. This makes the result
 * independent of enumeration and thread interleaving.
 */
inline bool
improves(double value, const std::string& tag, double best_value,
         const std::string& best_tag)
{
    return value < best_value ||
           (value == best_value && tag < best_tag);
}

/** Monotonically lowers @p shared_best to @p value (relaxed is enough:
 *  the bound is only a hint; correctness never depends on freshness). */
inline void
update_shared_best(std::atomic<double>& shared_best, double value)
{
    double current = shared_best.load(std::memory_order_relaxed);
    while (value < current &&
           !shared_best.compare_exchange_weak(
               current, value, std::memory_order_relaxed)) {
    }
}

} // namespace detail
} // namespace flat

#endif // FLAT_DSE_SEARCH_INTERNAL_H

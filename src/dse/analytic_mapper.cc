#include "dse/analytic_mapper.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/fault_injection.h"
#include "common/run_journal.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "dse/search_internal.h"

namespace flat {
namespace {

using namespace detail;

/** Cheapest bound cycles any loop order gives tile index @p t. */
double
tile_cycle_bound(const std::vector<GemmSliceCost>& table, std::size_t t,
                 std::size_t n_orders)
{
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t o = 0; o < n_orders; ++o) {
        best = std::min(best,
                        table[t * n_orders + o].compute.total_cycles());
    }
    return best;
}

/**
 * Argmin of @p value over [0, n) by bisection, ties to the smaller
 * index. The tile menus are ordered by ascending SG budget, and the
 * bound cycles are unimodal in that ordering (bigger tiles amortize
 * more until they stop helping), so the ternary split converges on the
 * minimum; menus are small enough that the tail scan below costs
 * nothing and also absorbs any non-unimodal corner exactly.
 */
template <typename F>
std::size_t
bisect_min_index(std::size_t n, F&& value)
{
    std::size_t lo = 0;
    std::size_t hi = n - 1;
    while (hi - lo > 2) {
        const std::size_t m1 = lo + (hi - lo) / 3;
        const std::size_t m2 = hi - (hi - lo) / 3;
        if (value(m1) <= value(m2)) {
            hi = m2 - 1; // minimum cannot be right of m2
        } else {
            lo = m1 + 1;
        }
    }
    std::size_t best = lo;
    for (std::size_t i = lo + 1; i <= hi; ++i) {
        if (value(i) < value(best)) {
            best = i;
        }
    }
    return best;
}

/** Fused live SG footprint of a tile pair with every flag staged. */
std::uint64_t
staged_footprint(const SearchSlice& slice, const AttentionDims& dims,
                 std::uint32_t bpe, const L2Tile& logit,
                 const L2Tile& attend)
{
    FusedDataflow df;
    df.cross = slice.cross;
    df.l2_logit = logit;
    df.stat_logit = slice.stat_logit;
    df.l2_attend = attend;
    df.stat_attend = slice.stat_attend;
    df.stage = FusedStageFlags{}; // all staged (loop orders irrelevant)
    return fused_live_footprint(df, dims, bpe);
}

/** Double-buffered SG bytes of one stage's tile (the term the repair
 *  loop trades between the two stages). */
std::uint64_t
tile_buffer_bytes(const L2Tile& tile, std::uint32_t bpe)
{
    return 2 * (tile.a_bytes(bpe) + tile.b_bytes(bpe) +
                tile.c_bytes(bpe));
}

AnalyticTileChoice
derive_slice_tiles(const AccelConfig& accel, const AttentionDims& dims,
                   const SearchSlice& slice, const SliceBound& bound,
                   std::size_t n_orders)
{
    const std::vector<L2Tile>& tiles_l = *slice.tiles_logit;
    const std::vector<L2Tile>& tiles_a = *slice.tiles_attend;
    const std::uint32_t bpe = accel.bytes_per_element;

    AnalyticTileChoice choice;
    // Per-stage closed form: every menu entry already satisfies the
    // stage's own double-buffering inequality 2(a+b+c) <= f*SG (that
    // is how default_l2_tile constructs it), so the stage-local
    // optimum is the largest entry — unless the bound says otherwise
    // (small GEMMs where a bigger staging tile buys no reuse), which
    // the bisection against bound_cycles resolves.
    choice.logit_index = bisect_min_index(tiles_l.size(), [&](std::size_t t) {
        return tile_cycle_bound(*bound.logit_costs, t, n_orders);
    });
    choice.attend_index =
        bisect_min_index(tiles_a.size(), [&](std::size_t t) {
            return tile_cycle_bound(*bound.attend_costs, t, n_orders);
        });
    choice.bisected = choice.logit_index + 1 != tiles_l.size() ||
                      choice.attend_index + 1 != tiles_a.size();

    // Joint SG constraint: the two stages share the buffer, so the
    // pairing can overflow even though each stage fits alone. Shrink
    // the stage holding more double-buffered bytes until the fused
    // footprint fits (mirrors default_l2_tile's own halving loop, one
    // level up). Footprint grows with either index, so the loop either
    // reaches a fitting pair or bottoms out at the smallest one.
    const auto fp = [&](std::size_t il, std::size_t ia) {
        return staged_footprint(slice, dims, bpe, tiles_l[il],
                                tiles_a[ia]);
    };
    while (fp(choice.logit_index, choice.attend_index) > accel.sg_bytes &&
           (choice.logit_index > 0 || choice.attend_index > 0)) {
        const std::uint64_t lb = tile_buffer_bytes(
            tiles_l[choice.logit_index], bpe);
        const std::uint64_t ab = tile_buffer_bytes(
            tiles_a[choice.attend_index], bpe);
        if (choice.attend_index > 0 &&
            (ab > lb || choice.logit_index == 0)) {
            --choice.attend_index;
        } else {
            --choice.logit_index;
        }
    }
    choice.logit = tiles_l[choice.logit_index];
    choice.attend = tiles_a[choice.attend_index];
    choice.staged_footprint_bytes =
        fp(choice.logit_index, choice.attend_index);
    choice.fits = choice.staged_footprint_bytes <= accel.sg_bytes;
    return choice;
}

/** Order index minimizing (bound cycles, streamed SG bytes, index) for
 *  tile index @p t — the analytic stand-in for sweeping the order axis
 *  (the exact scan in the refinement still has the last word). */
std::size_t
derive_order_index(const std::vector<GemmSliceCost>& table, std::size_t t,
                   std::size_t n_orders)
{
    std::size_t best = 0;
    for (std::size_t o = 1; o < n_orders; ++o) {
        const GemmComputeCost& cand = table[t * n_orders + o].compute;
        const GemmComputeCost& inc = table[t * n_orders + best].compute;
        if (cand.total_cycles() < inc.total_cycles() ||
            (cand.total_cycles() == inc.total_cycles() &&
             cand.sg_stream_bytes() < inc.sg_stream_bytes())) {
            best = o;
        }
    }
    return best;
}

/** Seed staging flags: stage everything when the fused footprint fits
 *  SG; otherwise keep the I/O tensors staged and spill the (dominant)
 *  intermediate — Table 2's M-Gran long-sequence regime. */
FusedStageFlags
derive_stage_flags(bool fits)
{
    FusedStageFlags flags; // all true
    flags.intermediate = fits;
    return flags;
}

/** Index of @p flags in the enumerated flag sets (0 when pinned). */
std::size_t
flag_index_of(const std::vector<FusedStageFlags>& flag_sets,
              const FusedStageFlags& flags)
{
    const std::uint32_t code = FusedStageFlags::encode(flags);
    for (std::size_t i = 0; i < flag_sets.size(); ++i) {
        if (FusedStageFlags::encode(flag_sets[i]) == code) {
            return i;
        }
    }
    return 0;
}

AnalyticSliceSeed
derive_slice_seed(const AccelConfig& accel, const AttentionDims& dims,
                  const SearchSlice& slice, const SliceBound& bound,
                  const std::vector<LoopOrder>& orders)
{
    AnalyticSliceSeed seed;
    seed.slice_key = slice_journal_key(slice);
    seed.tiles = derive_slice_tiles(accel, dims, slice, bound,
                                    orders.size());
    seed.order_logit = orders[derive_order_index(
        *bound.logit_costs, seed.tiles.logit_index, orders.size())];
    seed.order_attend = orders[derive_order_index(
        *bound.attend_costs, seed.tiles.attend_index, orders.size())];
    seed.stage = derive_stage_flags(seed.tiles.fits);
    return seed;
}

/** Coordinates of one design point inside a slice. */
struct PointCoords {
    std::size_t tl = 0; ///< logit tile index
    std::size_t ta = 0; ///< attend tile index
    std::size_t fi = 0; ///< staging-flag index
    std::size_t ol = 0; ///< logit order index
    std::size_t oa = 0; ///< attend order index

    bool operator==(const PointCoords& other) const
    {
        return tl == other.tl && ta == other.ta && fi == other.fi &&
               ol == other.ol && oa == other.oa;
    }
};

/** Refinement rounds before giving up on a fixed point. Each round
 *  re-scans all three axes from the incumbent, so the radius in the
 *  tile lattice grows by one per round; menus have at most a handful
 *  of entries and convergence is observed within 2-3 rounds. */
constexpr int kMaxRefineRounds = 8;

/**
 * Exact local refinement of one slice: hill-climb from the derived
 * seed under the search's total order (improves()), scanning the flag
 * axis, the order axes (batched: they share a plan base) and the +-1
 * tile neighborhood until a round improves nothing. All state is
 * slice-local, so the outcome is identical for any thread count; the
 * visited set guarantees every point is evaluated at most once and the
 * audit identity evaluated + pruned == slice points holds exactly.
 */
void
refine_slice(const AccelConfig& accel, const AttentionDims& dims,
             const AttentionSearchOptions& options,
             const EnergyTable& energy_table, const SlicedSpace& space,
             const SearchSlice& slice, const SliceBound& bound,
             const AnalyticSliceSeed& seed, SliceOutcome& out,
             std::atomic<double>& shared_best)
{
    const std::vector<L2Tile>& tiles_l = *slice.tiles_logit;
    const std::vector<L2Tile>& tiles_a = *slice.tiles_attend;
    const std::vector<LoopOrder>& orders = space.orders;
    const std::size_t n_orders = orders.size();
    const std::size_t n_flags = space.flag_sets.size();
    const std::vector<GemmSliceCost>& logit_costs = *bound.logit_costs;
    const std::vector<GemmSliceCost>& attend_costs = *bound.attend_costs;

    // Worker-lifetime evaluation state, shared with the exhaustive
    // sweep's contract: persistent pool threads reach allocation-free
    // steady state, and the plan-base memo revalidates itself.
    thread_local AttentionEvalScratch scratch;
    thread_local AttentionBatchEvaluator batch;
    thread_local std::unordered_set<std::uint64_t> visited;
    scratch.timeline.summary_only = true;
    visited.clear();

    PointCoords inc; // coordinates of the local incumbent
    const auto encode = [&](const PointCoords& p) {
        return (((static_cast<std::uint64_t>(p.tl) * tiles_a.size() +
                  p.ta) *
                     n_flags +
                 p.fi) *
                    n_orders +
                p.ol) *
                   n_orders +
               p.oa;
    };

    // One begin() block: every lane shares (tiles, flags) and varies
    // only the order axes — the same batching shape as the sweep.
    std::vector<PointCoords> lane_coords;
    const auto eval_block = [&](std::size_t tl, std::size_t ta,
                                std::size_t fi,
                                const std::vector<PointCoords>& points) {
        lane_coords.clear();
        for (const PointCoords& p : points) {
            if (visited.insert(encode(p)).second) {
                lane_coords.push_back(p);
            }
        }
        if (lane_coords.empty()) {
            return;
        }
        FusedDataflow df;
        df.cross = slice.cross;
        df.l2_logit = tiles_l[tl];
        df.stat_logit = slice.stat_logit;
        df.l2_attend = tiles_a[ta];
        df.stat_attend = slice.stat_attend;
        df.stage = space.flag_sets[fi];
        batch.begin(accel, dims, df, *slice.style,
                    options.baseline_overlap, lane_coords.size(),
                    scratch);
        for (const PointCoords& p : lane_coords) {
            batch.add(logit_costs[p.tl * n_orders + p.ol],
                      attend_costs[p.ta * n_orders + p.oa],
                      orders[p.ol], orders[p.oa]);
        }
        batch.evaluate();
        for (std::size_t i = 0; i < batch.lanes(); ++i) {
            ++out.evaluated;
            const double energy =
                estimate_energy(energy_table, batch.activity(i)).total();
            const double value = objective_value(
                options.objective, batch.cycles(i), energy);
            if (value <= out.value) {
                df.order_logit = orders[lane_coords[i].ol];
                df.order_attend = orders[lane_coords[i].oa];
                const std::string tag = candidate_tag(*slice.style, df);
                if (improves(value, tag, out.value, out.tag)) {
                    out.value = value;
                    out.tag = tag;
                    out.best.dataflow = df;
                    out.best.style = slice.style;
                    out.best.cost = batch.cost(i);
                    out.best.energy_j = energy;
                    out.found = true;
                    inc = lane_coords[i];
                    update_shared_best(shared_best, value);
                }
            }
        }
        batch.clear_lanes();
    };
    const auto eval_one = [&](const PointCoords& p) {
        eval_block(p.tl, p.ta, p.fi, {p});
    };

    PointCoords cur;
    cur.tl = seed.tiles.logit_index;
    cur.ta = seed.tiles.attend_index;
    cur.fi = flag_index_of(space.flag_sets, seed.stage);
    cur.ol = static_cast<std::size_t>(
        std::find(orders.begin(), orders.end(), seed.order_logit) -
        orders.begin());
    cur.oa = static_cast<std::size_t>(
        std::find(orders.begin(), orders.end(), seed.order_attend) -
        orders.begin());
    inc = cur;
    eval_one(cur);

    for (int round = 0; round < kMaxRefineRounds; ++round) {
        const PointCoords before = inc;

        // Staging-flag axis: exact scan. The flags couple footprint,
        // residency and traffic in every direction at once; 32 points
        // is cheap next to the tile x order product they replace.
        for (std::size_t fi = 0; fi < n_flags; ++fi) {
            PointCoords p = cur;
            p.fi = fi;
            eval_one(p);
        }
        cur = inc;

        // Order axes: one batched block (shared plan base).
        std::vector<PointCoords> order_points;
        order_points.reserve(n_orders * n_orders);
        for (std::size_t ol = 0; ol < n_orders; ++ol) {
            for (std::size_t oa = 0; oa < n_orders; ++oa) {
                PointCoords p = cur;
                p.ol = ol;
                p.oa = oa;
                order_points.push_back(p);
            }
        }
        eval_block(cur.tl, cur.ta, cur.fi, order_points);
        cur = inc;

        // Tile lattice: the +-1 neighborhood (diagonals included).
        for (int dl = -1; dl <= 1; ++dl) {
            for (int da = -1; da <= 1; ++da) {
                if (dl == 0 && da == 0) {
                    continue;
                }
                if ((dl < 0 && cur.tl == 0) ||
                    (da < 0 && cur.ta == 0) ||
                    (dl > 0 && cur.tl + 1 >= tiles_l.size()) ||
                    (da > 0 && cur.ta + 1 >= tiles_a.size())) {
                    continue;
                }
                PointCoords p = cur;
                p.tl = static_cast<std::size_t>(
                    static_cast<std::ptrdiff_t>(cur.tl) + dl);
                p.ta = static_cast<std::size_t>(
                    static_cast<std::ptrdiff_t>(cur.ta) + da);
                eval_one(p);
            }
        }
        cur = inc;

        if (inc == before) {
            break; // fixed point: no axis improved
        }
    }

    // Every point never visited is "pruned": the audit identity
    // evaluated + pruned == space size carries over to this mode.
    out.pruned = space.slice_points(slice) - out.evaluated;
}

/** The kAnalytic core; the verified wrapper lives in the public entry. */
AttentionSearchResult
analytic_core(const AccelConfig& accel, const AttentionDims& dims,
              const AttentionSearchOptions& options)
{
    FLAT_FAULT_POINT("dse.analytic_search");
    accel.validate();
    dims.validate();
    const EnergyTable energy_table = EnergyTable::for_accel(accel);
    const SlicedSpace space = build_sliced_space(accel, dims, options);

    // Same bound precomputation policy as the sweep (see search.cc).
    std::vector<SliceBound> bounds(space.slices.size());
    const auto fill_bound = [&](std::size_t si) {
        bounds[si] = make_slice_bound(accel, dims, energy_table,
                                      space.slices[si], space.orders);
    };
    if (space.slices.size() <= 64) {
        for (std::size_t si = 0; si < space.slices.size(); ++si) {
            fill_bound(si);
        }
    } else {
        parallel_for(space.slices.size(), options.threads, fill_bound,
                     /*grain=*/4);
    }

    // Slice priorities double as whole-slice prune bounds: a slice
    // whose best lower bound exceeds the shared incumbent cannot
    // contain the winner (the incumbent only decreases, so the final
    // optimum is below it too) and is skipped wholesale.
    std::vector<double> priority(space.slices.size());
    for (std::size_t si = 0; si < space.slices.size(); ++si) {
        const SliceBound& bound = bounds[si];
        double best_lb = std::numeric_limits<double>::infinity();
        for (std::size_t li = 0; li < bound.logit_costs->size(); ++li) {
            for (std::size_t ai = 0; ai < bound.attend_costs->size();
                 ++ai) {
                best_lb = std::min(
                    best_lb,
                    bound.lower_bound(options.objective, li, ai));
            }
        }
        priority[si] = best_lb;
    }

    std::atomic<double> shared_best{
        std::numeric_limits<double>::infinity()};
    std::vector<SliceOutcome> outcomes(space.slices.size());

    // Checkpoint restore, shared with the sweep. The scope key differs
    // (the canonical text carries mode=analytic), so sweep journals
    // and mapper journals never mix.
    std::string journal_scope;
    std::vector<char> slice_restored(space.slices.size(), 0);
    if (options.journal != nullptr) {
        journal_scope = search_scope_key(accel, dims, options);
        for (std::size_t si = 0; si < space.slices.size(); ++si) {
            const JsonValue* rec = options.journal->find(
                journal_scope, slice_journal_key(space.slices[si]));
            if (rec == nullptr) {
                continue;
            }
            outcomes[si] = restore_slice_outcome(*rec, accel, dims,
                                                 options,
                                                 space.slices[si],
                                                 energy_table);
            slice_restored[si] = 1;
            if (outcomes[si].found) {
                update_shared_best(shared_best, outcomes[si].value);
            }
        }
    }

    std::vector<std::size_t> schedule;
    schedule.reserve(space.slices.size());
    for (std::size_t si = 0; si < space.slices.size(); ++si) {
        if (slice_restored[si] == 0) {
            schedule.push_back(si);
        }
    }
    std::stable_sort(schedule.begin(), schedule.end(),
                     [&](std::size_t a, std::size_t b) {
                         return priority[a] < priority[b];
                     });

    parallel_for(
        schedule.size(), options.threads, [&](std::size_t k) {
            const std::size_t si = schedule[k];
            const SearchSlice& slice = space.slices[si];
            SliceOutcome& out = outcomes[si];
            if (options.cancel != nullptr &&
                options.cancel->cancelled()) {
                return; // never journaled; the poll below throws
            }
            if (options.prune &&
                priority[si] >
                    shared_best.load(std::memory_order_relaxed)) {
                // The whole slice is strictly worse than the final
                // optimum; skipping it can shift the evaluated/pruned
                // split across thread counts (like point pruning in
                // the sweep) but never the result.
                out.pruned = space.slice_points(slice);
            } else {
                const AnalyticSliceSeed seed = derive_slice_seed(
                    accel, dims, slice, bounds[si], space.orders);
                refine_slice(accel, dims, options, energy_table, space,
                             slice, bounds[si], seed, out, shared_best);
            }
            if (options.journal != nullptr) {
                options.journal->append(journal_scope,
                                        slice_journal_key(slice),
                                        encode_slice_outcome(out));
            }
        },
        /*grain=*/1, options.cancel);

    if (options.journal != nullptr) {
        options.journal->flush();
    }
    if (options.cancel != nullptr) {
        options.cancel->poll(); // throws CancelledError when tripped
    }

    // Deterministic reduction in slice order — identical to the sweep.
    AttentionSearchResult result;
    double best_value = std::numeric_limits<double>::infinity();
    std::string best_tag;
    for (const SliceOutcome& out : outcomes) {
        result.evaluated += out.evaluated;
        result.pruned += out.pruned;
        if (!out.found) {
            continue;
        }
        if (!result.found ||
            improves(out.value, out.tag, best_value, best_tag)) {
            best_value = out.value;
            best_tag = out.tag;
            result.best = out.best;
            result.found = true;
        }
    }
    FLAT_CHECK(result.found, "attention DSE evaluated an empty space");
    return result;
}

} // namespace

std::vector<AnalyticSliceSeed>
analytic_tile_seeds(const AccelConfig& accel, const AttentionDims& dims,
                    const AttentionSearchOptions& options)
{
    accel.validate();
    dims.validate();
    const EnergyTable energy_table = EnergyTable::for_accel(accel);
    const SlicedSpace space = build_sliced_space(accel, dims, options);
    std::vector<AnalyticSliceSeed> seeds;
    seeds.reserve(space.slices.size());
    for (const SearchSlice& slice : space.slices) {
        const SliceBound bound = make_slice_bound(
            accel, dims, energy_table, slice, space.orders);
        seeds.push_back(derive_slice_seed(accel, dims, slice, bound,
                                          space.orders));
    }
    return seeds;
}

AttentionSearchResult
analytic_search_attention(const AccelConfig& accel,
                          const AttentionDims& dims,
                          const AttentionSearchOptions& options)
{
    FLAT_CHECK(options.mode != SearchMode::kExhaustive,
               "analytic_search_attention called with the exhaustive "
               "mode; use search_attention");
    if (options.mode == SearchMode::kAnalytic) {
        return analytic_core(accel, dims, options);
    }
    // kAnalyticVerified: the analytic result is authoritative (it is
    // what callers deploy); the exhaustive run only scores it. The
    // verification leg never journals — its slices would double the
    // journal for a pure cross-check.
    AttentionSearchOptions analytic = options;
    analytic.mode = SearchMode::kAnalytic;
    AttentionSearchResult result = analytic_core(accel, dims, analytic);

    AttentionSearchOptions exhaustive = options;
    exhaustive.mode = SearchMode::kExhaustive;
    exhaustive.journal = nullptr;
    const AttentionSearchResult exact =
        search_attention(accel, dims, exhaustive);

    result.verified = true;
    result.verified_exhaustive_value =
        exact.best.objective_value(options.objective);
    const double mine = result.best.objective_value(options.objective);
    result.verified_ratio =
        result.verified_exhaustive_value > 0.0
            ? mine / result.verified_exhaustive_value
            : 1.0;
    return result;
}

} // namespace flat

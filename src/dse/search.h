/**
 * @file
 * Exhaustive design-space exploration (§5.3.3): every combination of
 * cross-loop granularity, staging flags, tile sizes, loop orders and
 * stationarities is one design point; the optimum under the chosen
 * objective is returned (Base-opt / FLAT-opt of Figure 7(b)).
 */
#ifndef FLAT_DSE_SEARCH_H
#define FLAT_DSE_SEARCH_H

#include <cstddef>
#include <optional>
#include <vector>

#include "arch/accel_config.h"
#include "costmodel/attention_cost.h"
#include "costmodel/operator_cost.h"
#include "dse/candidates.h"
#include "energy/energy_model.h"

namespace flat {

class CancellationToken;
class RunJournal;

/** Optimization objective of the DSE (Figure 6(b) outputs). */
enum class Objective {
    kRuntime, ///< minimize cycles (maximize Util)
    kEnergy,  ///< minimize energy
    kEdp,     ///< minimize energy-delay product
};

/** Objective value (lower is better) of a (cycles, energy) outcome.
 *  Single source of truth for every search loop. */
double objective_value(Objective objective, double cycles,
                       double energy_j);

/** Parses "runtime" / "energy" / "edp"; throws flat::Error. */
Objective parse_objective(const std::string& name);

/**
 * How the candidate space is searched.
 *
 * kExhaustive enumerates every design point — the historical behavior
 * and the default. kAnalytic keeps the same space (and the same
 * evaluated + pruned audit total) but visits only a derived subset:
 * for each (style x cross x stationarity) slice the tile sizes are
 * solved in closed form from the SL/SG footprint and bandwidth
 * constraints — bisecting against the monotone bound_cycles lower
 * bound where the closed form is ambiguous — and a bounded local
 * refinement (axis scans plus +-1 steps in the tile lattice) through
 * the exact timeline cost picks the winner (see dse/analytic_mapper.h).
 * kAnalyticVerified runs the analytic search and then the exhaustive
 * sweep, reporting the objective ratio between the two picks in the
 * result's verification fields (1.0 = exact parity).
 */
enum class SearchMode {
    kExhaustive,
    kAnalytic,
    kAnalyticVerified,
};

/** Parses "exhaustive" / "analytic" / "analytic-verified" (underscore
 *  accepted); throws flat::Error. */
SearchMode parse_search_mode(const std::string& name);

/** Stable lowercase name ("analytic-verified" style). */
const char* to_string(SearchMode mode);

/** One evaluated design point. */
struct DsePoint {
    FusedDataflow dataflow;
    OperatorCost cost;
    double energy_j = 0.0;

    /** Execution style the point was evaluated under. Search and
     *  explore results always set it; hand-built points default to
     *  null (treated as the historical fused/baseline pick). */
    const ExecutionStyle* style = nullptr;

    /** Objective value (lower is better). */
    double objective_value(Objective objective) const;
};

/** Search-space restrictions and effort. */
struct AttentionSearchOptions {
    Objective objective = Objective::kRuntime;

    /** Search strategy over the (unchanged) candidate space; see
     *  SearchMode. Folded into the journal scope key (non-exhaustive
     *  modes only), so a resume under a different mode starts fresh
     *  instead of mixing incompatible slice records. */
    SearchMode mode = SearchMode::kExhaustive;

    /** true => FLAT fused space; false => sequential baseline space
     *  (R-granularity excluded automatically). Read only when `styles`
     *  is empty. */
    bool fused = true;

    /**
     * Execution styles to enumerate, by registry id ("baseline",
     * "flat", "pipelined", "flash"); the literal "all" expands to the
     * whole registry. Each style contributes the slices its admits()
     * accepts — flash brings the C-Gran column menu, the baseline
     * rejects R/C-Gran — and the search optimizes across the union.
     * Empty => the single style the historical `fused` flag selects,
     * keeping established search spaces (and their incumbent
     * trajectories and journal scopes) unchanged.
     */
    std::vector<std::string> styles;

    /** Pin the cross loop (e.g. FLAT-M, ATTACC-R64); empty => sweep. */
    std::optional<CrossLoop> fixed_cross;

    /** Pin the staging flags; empty => sweep all 32. */
    std::optional<FusedStageFlags> fixed_flags;

    /** Smaller menus for broad sweeps (Figure 8/9 grids). */
    bool quick = false;

    /** Overlap assumption for the sequential baseline (ablation). */
    BaselineOverlap baseline_overlap = BaselineOverlap::kFull;

    /**
     * Worker threads sweeping the space; 0 = auto (the FLAT_THREADS
     * environment variable, else all hardware threads). The result is
     * bit-identical for any thread count: each (cross-loop x
     * stationarity) slice keeps a local incumbent and a final
     * deterministic reduction breaks ties by (objective value, tag).
     */
    unsigned threads = 0;

    /**
     * Incumbent lower-bound pruning: skip the full cost model whenever
     * a cheap monotone bound (ideal compute cycles of the two staged
     * GEMMs plus the softmax and cold-start terms) already exceeds the
     * best objective seen so far. Never changes the returned optimum —
     * only strictly-worse points are skipped.
     */
    bool prune = true;

    /**
     * Optional checkpoint journal: each completed (cross-loop x
     * stationarity) slice is appended under a scope key derived from
     * the accelerator, dims and space-shaping options, and slices
     * already in the journal are restored (the winning dataflow is
     * re-evaluated through the cost model — cheap and deterministic)
     * instead of searched. A restored-then-finished search returns a
     * result bit-identical to an uninterrupted one under the same
     * determinism conditions that already govern repeated runs
     * (fixed thread count, or pruning off).
     */
    RunJournal* journal = nullptr;

    /**
     * Optional cooperative cancellation: polled between slices and at
     * every (tiles, staging flags) block inside a slice. On
     * cancellation the search journals nothing partial, flushes the
     * journal and throws CancelledError.
     */
    const CancellationToken* cancel = nullptr;

    /**
     * Lanes per batched evaluation (see AttentionBatchEvaluator):
     * the loop-order axes of each (tiles, staging flags) block are
     * buffered and evaluated SoA-style in groups of this size.
     * 0 = auto (one whole block, i.e. #loop-orders squared). The
     * returned optimum is bit-identical for ANY width — smaller widths
     * only update the pruning incumbent more often, which shifts the
     * evaluated/pruned split, never the result.
     */
    std::size_t batch_width = 0;

    CandidateOptions candidates;
};

/** DSE outcome for the fused/baseline L-A operator. */
struct AttentionSearchResult {
    DsePoint best;

    /** Points run through the full cost model. */
    std::size_t evaluated = 0;

    /** Points skipped by the lower-bound test. evaluated + pruned is
     *  the full space size and is stable across thread counts; the
     *  split may shift with scheduling when threads > 1. (The analytic
     *  mode counts every point it never visited as pruned, keeping the
     *  same audit identity.) */
    std::size_t pruned = 0;

    bool found = false;

    /** SearchMode::kAnalyticVerified only: the exhaustive optimum's
     *  objective value and the analytic/exhaustive ratio. The analytic
     *  pick evaluates a subset of the same space through the same
     *  evaluator, so the ratio is never below 1.0; exactly 1.0 means
     *  the analytic mapper found the true optimum. */
    bool verified = false;
    double verified_exhaustive_value = 0.0;
    double verified_ratio = 1.0;
};

/**
 * Finds the best L-A dataflow on @p accel for @p dims. The sweep runs
 * on opt.threads workers with incumbent pruning (see the options); the
 * returned point is bit-identical to a serial unpruned search.
 */
AttentionSearchResult search_attention(const AccelConfig& accel,
                                       const AttentionDims& dims,
                                       const AttentionSearchOptions& opt);

/**
 * Evaluates and returns every design point (Figure 10's scatter) in the
 * serial enumeration order regardless of opt.threads.
 * @p max_points caps the output (0 = unlimited; a cap stops the
 * enumeration early instead of walking the whole space).
 */
std::vector<DsePoint> explore_attention(const AccelConfig& accel,
                                        const AttentionDims& dims,
                                        const AttentionSearchOptions& opt,
                                        std::size_t max_points = 0);

/** DSE outcome for one non-fused operator. */
struct OperatorSearchResult {
    OperatorDataflow dataflow;
    OperatorCost cost;
    double energy_j = 0.0;
    std::size_t evaluated = 0;
    bool found = false;
};

/** Options for single-operator DSE (projections, FCs). */
struct OperatorSearchOptions {
    Objective objective = Objective::kRuntime;

    /** Allow the L3 staging level at all (BaseAccel forbids it). */
    bool allow_l3 = true;

    bool quick = false;

    /** Optional cooperative cancellation, polled per tile menu entry;
     *  throws CancelledError when tripped. */
    const CancellationToken* cancel = nullptr;

    CandidateOptions candidates;
};

/** Finds the best dataflow for one GEMM operator. */
OperatorSearchResult search_operator(const AccelConfig& accel,
                                     const Operator& op,
                                     const OperatorSearchOptions& opt);

} // namespace flat

#endif // FLAT_DSE_SEARCH_H

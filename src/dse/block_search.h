/**
 * @file
 * Joint DSE over a whole Transformer block chain: the QKV projections,
 * the fused L-A pipeline and the position-wise FCs of one block are
 * searched together, each layer keeping its own heterogeneous mapping
 * (cross loop, tiles, orders, staging) under a shared objective. The
 * cheap per-point cost of the analytic mapper (SearchMode::kAnalytic)
 * is what makes this practical — the block chain multiplies the
 * attention space by the projection/FC spaces — but every mode works.
 *
 * Exposed on the CLI as `flatsim --block [--search-mode analytic]`.
 */
#ifndef FLAT_DSE_BLOCK_SEARCH_H
#define FLAT_DSE_BLOCK_SEARCH_H

#include <cstddef>
#include <string>
#include <vector>

#include "dse/search.h"
#include "workload/attention.h"

namespace flat {

/** Options of the two per-layer searches. The attention options carry
 *  the SearchMode; quick/objective/cancel should usually agree between
 *  the two (simulator wiring keeps them in sync). */
struct BlockSearchOptions {
    AttentionSearchOptions attention;
    OperatorSearchOptions op;
};

/** The chosen mapping of one layer in the chain. Exactly one of the
 *  attention / GEMM views is meaningful, per the `attention` flag;
 *  softmax is folded into the fused L-A layer. */
struct BlockLayerPlan {
    std::string name; ///< operator name ("Q", "FC1", ...; "L-A" fused)
    bool attention = false;

    /** Attention layer: the fused winner (style + dataflow). */
    DsePoint la;

    /** GEMM layer: the single-operator winner. */
    OperatorDataflow dataflow;

    double cycles = 0.0;
    double energy_j = 0.0;
    std::size_t evaluated = 0;
    std::size_t pruned = 0;

    /** The mapping was memoized from an earlier identical GEMM shape
     *  (Q/K/V share one search for MHA) — audit counters stay with the
     *  layer that ran the search. */
    bool reused = false;
};

/** Joint outcome over the chain. */
struct BlockSearchResult {
    std::vector<BlockLayerPlan> layers; ///< execution order

    double block_cycles = 0.0;   ///< serial sum over one block
    double block_energy_j = 0.0;
    std::uint64_t blocks = 1;    ///< model-scope multiplier
    double model_cycles = 0.0;   ///< block totals x blocks
    double model_energy_j = 0.0;

    std::size_t evaluated = 0; ///< all layers, attention + GEMM
    std::size_t pruned = 0;    ///< attention search only
};

/**
 * Searches every layer of @p workload's block (attention via
 * search_attention under options.attention — including its SearchMode —
 * projections/FCs via search_operator, memoized across identical GEMM
 * shapes) and returns the per-layer winners plus chain totals.
 */
BlockSearchResult search_block(const AccelConfig& accel,
                               const Workload& workload,
                               const BlockSearchOptions& options);

} // namespace flat

#endif // FLAT_DSE_BLOCK_SEARCH_H

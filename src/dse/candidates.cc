#include "dse/candidates.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "common/math_util.h"
#include "costmodel/gemm_engine.h"

namespace flat {

std::vector<L2Tile>
tile_candidates(const AccelConfig& accel, const GemmShape& shape,
                const CandidateOptions& options, Stationarity stationarity)
{
    std::vector<L2Tile> out;
    std::set<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>> seen;
    for (double fraction : options.tile_budget_fractions) {
        const auto budget = static_cast<std::uint64_t>(
            std::max(1.0, fraction * static_cast<double>(accel.sg_bytes)));
        const L2Tile tile =
            default_l2_tile(accel, shape, budget, stationarity)
                .clamped(shape);
        if (seen.insert({tile.m, tile.k, tile.n}).second) {
            out.push_back(tile);
        }
    }
    return out;
}

std::vector<std::uint64_t>
row_tile_candidates(const AccelConfig& accel, std::uint64_t q_len,
                    const CandidateOptions& options)
{
    std::vector<std::uint64_t> raw = options.row_candidates;
    if (raw.empty()) {
        // Multiples of the array height amortize the spatial folding.
        const std::uint64_t base = accel.pe_rows;
        raw = {base / 2, base, 2 * base, 4 * base, 8 * base};
    }
    std::set<std::uint64_t> dedup;
    for (std::uint64_t r : raw) {
        if (r == 0) {
            continue;
        }
        dedup.insert(std::min<std::uint64_t>(r, q_len));
    }
    return {dedup.begin(), dedup.end()};
}

std::vector<CrossLoop>
cross_loop_candidates(const AccelConfig& accel, std::uint64_t q_len,
                      const CandidateOptions& opt, bool include_row)
{
    std::vector<CrossLoop> out;
    out.push_back({Granularity::kMulti, 0});
    out.push_back({Granularity::kBatch, 0});
    out.push_back({Granularity::kHead, 0});
    if (include_row) {
        for (std::uint64_t r : row_tile_candidates(accel, q_len, opt)) {
            out.push_back({Granularity::kRow, r});
        }
    }
    return out;
}

std::vector<std::uint64_t>
col_tile_candidates(const AccelConfig& accel, std::uint64_t kv_len,
                    const CandidateOptions& options)
{
    std::vector<std::uint64_t> raw = options.col_candidates;
    if (raw.empty()) {
        // Multiples of the array width fill the logit GEMM's n
        // dimension; a geometric menu spans register-tier capacities
        // from tight (one array pass) to generous (deep streaming).
        const std::uint64_t base = accel.pe_cols;
        raw = {base, 4 * base, 16 * base};
    }
    std::set<std::uint64_t> dedup;
    for (std::uint64_t c : raw) {
        if (c == 0) {
            continue;
        }
        dedup.insert(std::min<std::uint64_t>(c, kv_len));
    }
    return {dedup.begin(), dedup.end()};
}

std::vector<CrossLoop>
column_cross_candidates(const AccelConfig& accel, std::uint64_t q_len,
                        std::uint64_t kv_len, const CandidateOptions& opt)
{
    std::vector<CrossLoop> out;
    for (std::uint64_t r : row_tile_candidates(accel, q_len, opt)) {
        for (std::uint64_t c : col_tile_candidates(accel, kv_len, opt)) {
            CrossLoop cross;
            cross.granularity = Granularity::kColumn;
            cross.rows = r;
            cross.cols = c;
            out.push_back(cross);
        }
    }
    return out;
}

std::vector<LoopOrder>
loop_order_candidates(const CandidateOptions& opt)
{
    if (!opt.loop_orders.empty()) {
        return opt.loop_orders;
    }
    // Keep the reduction loop innermost (accumulate in the array) in two
    // variants plus one k-outermost order for contrast.
    return {LoopOrder::kMNK, LoopOrder::kNMK, LoopOrder::kKMN};
}

std::vector<Stationarity>
stationarity_candidates(const CandidateOptions& opt)
{
    if (!opt.stationarities.empty()) {
        return opt.stationarities;
    }
    return {Stationarity::kOutputStationary,
            Stationarity::kWeightStationary,
            Stationarity::kInputStationary};
}

std::vector<FusedStageFlags>
stage_flag_candidates(const CandidateOptions& opt)
{
    std::vector<FusedStageFlags> out;
    if (!opt.sweep_stage_flags) {
        out.push_back(FusedStageFlags{});
        return out;
    }
    out.reserve(32);
    for (std::uint32_t code = 0; code < 32; ++code) {
        out.push_back(FusedStageFlags::decode(code));
    }
    return out;
}

} // namespace flat

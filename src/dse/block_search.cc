#include "dse/block_search.h"

#include <map>
#include <tuple>
#include <utility>

#include "common/status.h"

namespace flat {

BlockSearchResult
search_block(const AccelConfig& accel, const Workload& workload,
             const BlockSearchOptions& options)
{
    accel.validate();
    FLAT_CHECK(!workload.ops.empty(), "block search on an empty block");

    BlockSearchResult result;
    result.blocks = workload.scope_multiplier(Scope::kModel);

    // Identical GEMM shapes share one search: Q/K/V are the same
    // activation-weight GEMM under MHA (GQA shrinks K/V), so the memo
    // typically collapses three searches into one.
    std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>,
             OperatorSearchResult>
        gemm_memo;

    bool la_done = false;
    for (const Operator& op : workload.ops) {
        if (op.category == OpCategory::kLogitAttend ||
            op.category == OpCategory::kSoftmax) {
            if (la_done) {
                continue; // L, softmax, A are one fused layer
            }
            la_done = true;
            const AttentionDims dims =
                AttentionDims::from_workload(workload);
            const AttentionSearchResult la =
                search_attention(accel, dims, options.attention);
            BlockLayerPlan layer;
            layer.name = "L-A";
            layer.attention = true;
            layer.la = la.best;
            layer.cycles = la.best.cost.cycles;
            layer.energy_j = la.best.energy_j;
            layer.evaluated = la.evaluated;
            layer.pruned = la.pruned;
            result.layers.push_back(std::move(layer));
            continue;
        }
        FLAT_CHECK(op.kind == OpKind::kGemm,
                   op.name << ": unexpected non-GEMM outside the L-A "
                           << "group");
        const auto key =
            std::make_tuple(op.gemm.m, op.gemm.k, op.gemm.n);
        auto it = gemm_memo.find(key);
        const bool reused = it != gemm_memo.end();
        if (!reused) {
            it = gemm_memo
                     .emplace(key,
                              search_operator(accel, op, options.op))
                     .first;
        }
        const OperatorSearchResult& best = it->second;
        BlockLayerPlan layer;
        layer.name = op.name;
        layer.dataflow = best.dataflow;
        layer.cycles = best.cost.cycles;
        layer.energy_j = best.energy_j;
        layer.evaluated = reused ? 0 : best.evaluated;
        layer.reused = reused;
        result.layers.push_back(std::move(layer));
    }

    for (const BlockLayerPlan& layer : result.layers) {
        result.block_cycles += layer.cycles;
        result.block_energy_j += layer.energy_j;
        result.evaluated += layer.evaluated;
        result.pruned += layer.pruned;
    }
    const double blocks = static_cast<double>(result.blocks);
    result.model_cycles = result.block_cycles * blocks;
    result.model_energy_j = result.block_energy_j * blocks;
    return result;
}

} // namespace flat

/**
 * @file
 * Analytic tile mapper: the closed-form alternative to the exhaustive
 * sweep (SearchMode::kAnalytic / kAnalyticVerified on
 * AttentionSearchOptions).
 *
 * The discrete axes of the space — execution style, cross-loop
 * granularity, stationarities — are still enumerated (filtered through
 * ExecutionStyle::admits, exactly like the sweep), but inside each
 * slice the continuous-ish axes are DERIVED instead of swept:
 *
 *  - tile sizes come from the SL/SG footprint constraint (the per-stage
 *    double-buffering inequality the tile menus already solve) plus a
 *    joint SG repair loop, bisecting the menu against the monotone
 *    ExecutionStyle::bound_cycles lower bound where the
 *    "largest-feasible-tile" closed form is ambiguous;
 *  - loop orders come from the cached per-(tile, order) GEMM cost
 *    records (argmin of bound cycles, ties to streamed SG bytes);
 *  - staging flags start from the footprint test (stage everything
 *    when the fused working set fits SG, drop the intermediate when it
 *    does not).
 *
 * The derived seed is then polished by bounded local refinement through
 * the exact timeline cost: axis scans over flags and loop orders plus
 * +-1 neighbor steps in the (logit, attend) tile lattice, repeated to a
 * fixed point. Every exact evaluation goes through the same batched
 * evaluator as the sweep, so the winning point's cost/energy are
 * bit-identical to what the exhaustive search would report for it, and
 * the slice bookkeeping (journal records, evaluated + pruned == space
 * size, deterministic reduction order) is shared with dse/search.cc.
 */
#ifndef FLAT_DSE_ANALYTIC_MAPPER_H
#define FLAT_DSE_ANALYTIC_MAPPER_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dse/search.h"

namespace flat {

/** Closed-form tile pick for one (style x cross x stationarity) slice. */
struct AnalyticTileChoice {
    /** Indices into the slice's per-stage tile menus. */
    std::size_t logit_index = 0;
    std::size_t attend_index = 0;
    L2Tile logit;
    L2Tile attend;

    /** Fused live SG footprint (bytes) of the pick with every stage
     *  flag enabled — the constraint the derivation solves against. */
    std::uint64_t staged_footprint_bytes = 0;

    /** staged_footprint_bytes <= accel.sg_bytes. False only when no
     *  tile pair in the menus fits (e.g. M-Gran at long sequence
     *  lengths, where the N^2 intermediate alone exceeds SG); the
     *  refinement then drops the intermediate staging flag instead. */
    bool fits = false;

    /** The bound bisection picked a smaller tile than the
     *  largest-feasible closed form (a non-monotone menu). */
    bool bisected = false;
};

/** Derived starting point of one slice, before exact refinement. */
struct AnalyticSliceSeed {
    std::string slice_key; ///< style/cross/stat_logit/stat_attend
    AnalyticTileChoice tiles;
    LoopOrder order_logit = LoopOrder::kMNK;
    LoopOrder order_attend = LoopOrder::kMNK;
    FusedStageFlags stage;
};

/**
 * The closed-form seeds for every slice of the space the options
 * describe, in slice order. Exposed for the property tests (footprint
 * feasibility, bound consistency); analytic_search_attention derives
 * exactly these internally.
 */
std::vector<AnalyticSliceSeed>
analytic_tile_seeds(const AccelConfig& accel, const AttentionDims& dims,
                    const AttentionSearchOptions& options);

/**
 * The analytic search itself. Called by search_attention when
 * options.mode != SearchMode::kExhaustive; call through
 * search_attention rather than directly. Honors threads / prune /
 * journal / cancel with the same contracts as the sweep: the result is
 * bit-identical for any thread count, evaluated + pruned equals the
 * full space size, and kAnalyticVerified fills the result's
 * verification fields from a nested exhaustive run.
 */
AttentionSearchResult
analytic_search_attention(const AccelConfig& accel,
                          const AttentionDims& dims,
                          const AttentionSearchOptions& options);

} // namespace flat

#endif // FLAT_DSE_ANALYTIC_MAPPER_H

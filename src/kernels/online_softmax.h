/**
 * @file
 * Online (streaming) softmax: processes each row in column blocks with
 * a running maximum and running denominator, rescaling already-emitted
 * work when the maximum grows. This is the recurrence that lets the
 * flash execution style stream C-Gran column blocks below the R-Gran
 * row floor — the row-wide reduction of §4.2.1 is replaced by a
 * per-block update plus a rescale, so no phase ever needs the whole
 * row at once.
 *
 * Numerics: with a single block (col_block == 0 or >= the row width)
 * the computation is bit-identical to softmax_rows() — same max, same
 * accumulation order, same normalization. Multi-block results differ
 * from the two-pass softmax only by the rescale multiplications, a
 * few float ULP per element (the parity test pins the bound).
 */
#ifndef FLAT_KERNELS_ONLINE_SOFTMAX_H
#define FLAT_KERNELS_ONLINE_SOFTMAX_H

#include <cstddef>

#include "kernels/matrix.h"

namespace flat {

/**
 * In-place online softmax over each row of @p m, streaming columns in
 * blocks of @p col_block (0 => one block covering the whole row, which
 * reproduces softmax_rows() bit for bit).
 */
void online_softmax_rows(Matrix& m, std::size_t col_block);

/**
 * Causal-masked variant: for output row r (global index @p row_offset
 * + local row), columns greater than the global row index get zero
 * probability — the same contract as softmax_rows_causal().
 */
void online_softmax_rows_causal(Matrix& m, std::size_t row_offset,
                                std::size_t col_block);

} // namespace flat

#endif // FLAT_KERNELS_ONLINE_SOFTMAX_H

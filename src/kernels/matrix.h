/**
 * @file
 * Minimal dense row-major matrix used by the functional kernels. The
 * kernels exist to validate the FLAT dataflow numerically (fused
 * row-streamed attention == materialized attention) and to demonstrate
 * the traffic claims with instrumented counters — not to be fast BLAS.
 */
#ifndef FLAT_KERNELS_MATRIX_H
#define FLAT_KERNELS_MATRIX_H

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace flat {

/** Dense row-major float matrix. */
class Matrix
{
  public:
    Matrix() = default;

    /** Allocates a rows x cols matrix zero-initialized. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
    {
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float& at(std::size_t r, std::size_t c)
    {
        FLAT_ASSERT(r < rows_ && c < cols_,
                    "index (" << r << "," << c << ") out of " << rows_
                              << "x" << cols_);
        return data_[r * cols_ + c];
    }

    float at(std::size_t r, std::size_t c) const
    {
        FLAT_ASSERT(r < rows_ && c < cols_,
                    "index (" << r << "," << c << ") out of " << rows_
                              << "x" << cols_);
        return data_[r * cols_ + c];
    }

    float* row_ptr(std::size_t r) { return data_.data() + r * cols_; }
    const float* row_ptr(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }

    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }

    /** Maximum absolute element-wise difference to @p other. */
    float max_abs_diff(const Matrix& other) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/** Fills @p m with deterministic pseudo-random values in [-1, 1]. */
void fill_random(Matrix& m, std::uint64_t seed);

/** C = A x B (no accumulation into prior C contents). */
Matrix matmul(const Matrix& a, const Matrix& b);

/** C = A x B^T. */
Matrix matmul_transposed(const Matrix& a, const Matrix& b_transposed);

} // namespace flat

#endif // FLAT_KERNELS_MATRIX_H

/**
 * @file
 * Instrumentation for the functional kernels: kernels declare every
 * modeled off-chip (DRAM) and on-chip (SG) transfer against the meter,
 * so tests can assert the paper's traffic claims — e.g. the fused FLAT
 * kernel moves ZERO intermediate-tensor bytes off-chip while the
 * baseline moves O(N^2) of them.
 */
#ifndef FLAT_KERNELS_TRAFFIC_METER_H
#define FLAT_KERNELS_TRAFFIC_METER_H

#include <cstdint>
#include <map>
#include <string>

namespace flat {

/** Byte counters per logical tensor and memory level. */
class TrafficMeter
{
  public:
    /** Records bytes moving DRAM -> chip for @p tensor. */
    void offchip_read(const std::string& tensor, std::uint64_t bytes);

    /** Records bytes moving chip -> DRAM for @p tensor. */
    void offchip_write(const std::string& tensor, std::uint64_t bytes);

    /** Records on-chip (SG-level) bytes for @p tensor. */
    void onchip(const std::string& tensor, std::uint64_t bytes);

    /** Total off-chip bytes for one tensor (reads + writes). */
    std::uint64_t offchip_bytes(const std::string& tensor) const;

    /** Total on-chip bytes for one tensor. */
    std::uint64_t onchip_bytes(const std::string& tensor) const;

    /** Grand totals. */
    std::uint64_t total_offchip() const;
    std::uint64_t total_onchip() const;

    /** All tensors seen, for report printing. */
    std::map<std::string, std::uint64_t> offchip_by_tensor() const;

    void reset();

  private:
    std::map<std::string, std::uint64_t> offchip_read_;
    std::map<std::string, std::uint64_t> offchip_write_;
    std::map<std::string, std::uint64_t> onchip_;
};

} // namespace flat

#endif // FLAT_KERNELS_TRAFFIC_METER_H

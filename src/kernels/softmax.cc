#include "kernels/softmax.h"

#include <cmath>
#include <limits>

namespace flat {
namespace {

void
softmax_one_row(float* row, std::size_t cols, std::size_t valid_cols)
{
    float max_val = -std::numeric_limits<float>::infinity();
    for (std::size_t j = 0; j < valid_cols; ++j) {
        max_val = std::max(max_val, row[j]);
    }
    float denom = 0.0f;
    for (std::size_t j = 0; j < valid_cols; ++j) {
        row[j] = std::exp(row[j] - max_val);
        denom += row[j];
    }
    const float inv = 1.0f / denom;
    for (std::size_t j = 0; j < valid_cols; ++j) {
        row[j] *= inv;
    }
    for (std::size_t j = valid_cols; j < cols; ++j) {
        row[j] = 0.0f;
    }
}

} // namespace

void
softmax_rows(Matrix& m)
{
    softmax_rows(m, 0, m.rows());
}

void
softmax_rows(Matrix& m, std::size_t row_begin, std::size_t row_end)
{
    FLAT_CHECK(row_begin <= row_end && row_end <= m.rows(),
               "bad row range [" << row_begin << "," << row_end << ") of "
                                 << m.rows());
    for (std::size_t r = row_begin; r < row_end; ++r) {
        softmax_one_row(m.row_ptr(r), m.cols(), m.cols());
    }
}

void
softmax_rows_causal(Matrix& m, std::size_t row_offset)
{
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const std::size_t valid =
            std::min(m.cols(), row_offset + r + 1);
        softmax_one_row(m.row_ptr(r), m.cols(), valid);
    }
}

void
scale(Matrix& m, float factor)
{
    for (std::size_t i = 0; i < m.size(); ++i) {
        m.data()[i] *= factor;
    }
}

} // namespace flat

/**
 * @file
 * Functional attention kernels: the baseline dataflow (materializes the
 * full logits matrix and round-trips it through "DRAM") and the FLAT
 * dataflow (streams R-row blocks; the intermediate tensor never leaves
 * the chip). Both produce bit-comparable results up to float rounding —
 * FLAT is a pure dataflow change, not an approximation (§4).
 */
#ifndef FLAT_KERNELS_ATTENTION_H
#define FLAT_KERNELS_ATTENTION_H

#include <cstddef>
#include <vector>

#include "kernels/matrix.h"
#include "kernels/traffic_meter.h"

namespace flat {

/** Options shared by both kernels. */
struct AttentionOptions {
    /** Apply the 1/sqrt(dk) logit scaling. */
    bool scaled = true;

    /** Causal (autoregressive) masking of future positions. */
    bool causal = false;
};

/**
 * Baseline single-head attention: out = softmax(Q K^T / sqrt(dk)) V with
 * the [N, N_kv] logits tensor fully materialized.
 *
 * @param q [N, dk] queries, @param k [N_kv, dk] keys,
 * @param v [N_kv, dk] values.
 * @param meter optional traffic instrumentation; the intermediate tensor
 *        is charged as off-chip traffic (write by L, read+write by
 *        softmax, read by A) exactly as the baseline dataflow moves it.
 */
Matrix attention_reference(const Matrix& q, const Matrix& k,
                           const Matrix& v,
                           const AttentionOptions& options = {},
                           TrafficMeter* meter = nullptr);

/**
 * FLAT single-head attention at R-row granularity: logits are computed,
 * softmaxed and consumed R rows at a time; the intermediate slice stays
 * in the on-chip buffer (charged as on-chip traffic only).
 *
 * @param row_tile R — the number of logits rows per pass (>=1).
 */
Matrix attention_flat(const Matrix& q, const Matrix& k, const Matrix& v,
                      std::size_t row_tile,
                      const AttentionOptions& options = {},
                      TrafficMeter* meter = nullptr);

/**
 * Flash (column-streamed) single-head attention: logits are computed
 * R rows x C key-columns at a time; the online-softmax recurrence
 * (running max + running denominator, see online_softmax.h) rescales
 * the output accumulator between column blocks, so no phase ever holds
 * more than an [R, C] logits block — the functional counterpart of the
 * C-Gran flash execution style.
 *
 * Numerically exact: with col_tile >= N_kv it degenerates to one block
 * per row pass (softmax bit-identical to attention_flat's); smaller
 * column tiles differ from the reference only by the rescale rounding.
 *
 * @param row_tile R — logits rows per pass (>= 1).
 * @param col_tile C — key columns per block (0 => all of N_kv).
 */
Matrix attention_flash(const Matrix& q, const Matrix& k, const Matrix& v,
                       std::size_t row_tile, std::size_t col_tile,
                       const AttentionOptions& options = {},
                       TrafficMeter* meter = nullptr);

/** Weights of a full attention layer (Figure 1(b)). */
struct AttentionLayerWeights {
    Matrix wq; ///< [D, D]
    Matrix wk; ///< [D, D]
    Matrix wv; ///< [D, D]
    Matrix wo; ///< [D, D]

    /** Deterministically random weights for a model width @p d. */
    static AttentionLayerWeights random(std::size_t d, std::uint64_t seed);
};

/**
 * Full multi-head attention layer: project, split into @p num_heads
 * heads, run per-head attention (baseline or FLAT), concatenate, apply
 * the output projection.
 *
 * @param x_q [N, D] query-side input; @param x_kv [N_kv, D] key/value
 * side input (pass the same matrix for self-attention).
 * @param row_tile 0 => baseline kernel; >0 => FLAT kernel with that R.
 */
Matrix attention_layer_forward(const Matrix& x_q, const Matrix& x_kv,
                               const AttentionLayerWeights& weights,
                               std::size_t num_heads, std::size_t row_tile,
                               const AttentionOptions& options = {},
                               TrafficMeter* meter = nullptr);

/** Slices head @p h (of @p num_heads) columns out of [N, D] @p x. */
Matrix split_head(const Matrix& x, std::size_t num_heads, std::size_t h);

/**
 * Local (windowed) self-attention, the Longformer-style sparse pattern
 * the paper lists as orthogonal to FLAT (§7): query row i attends only
 * to keys in [i - window, i + window]. Reference implementation:
 * materializes the full logits matrix and masks it.
 */
Matrix attention_local_reference(const Matrix& q, const Matrix& k,
                                 const Matrix& v, std::size_t window,
                                 const AttentionOptions& options = {},
                                 TrafficMeter* meter = nullptr);

/**
 * FLAT composed with local attention: each R-row pass touches only the
 * K/V slice its window covers, so both the intermediate slice AND the
 * per-pass K/V working set become O(R + 2*window) — independent of N.
 */
Matrix attention_flat_local(const Matrix& q, const Matrix& k,
                            const Matrix& v, std::size_t row_tile,
                            std::size_t window,
                            const AttentionOptions& options = {},
                            TrafficMeter* meter = nullptr);

} // namespace flat

#endif // FLAT_KERNELS_ATTENTION_H

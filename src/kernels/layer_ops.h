/**
 * @file
 * The non-attention layer operations of a transformer block
 * (Figure 1(a)): layer normalization, the GELU activation of the
 * feed-forward pair, bias addition and residual connections.
 */
#ifndef FLAT_KERNELS_LAYER_OPS_H
#define FLAT_KERNELS_LAYER_OPS_H

#include <cstddef>
#include <vector>

#include "kernels/matrix.h"

namespace flat {

/**
 * In-place layer normalization over each row of @p x:
 * y = gamma * (x - mean) / sqrt(var + eps) + beta.
 *
 * @param gamma per-column scale (size = cols).
 * @param beta per-column shift (size = cols).
 */
void layernorm_rows(Matrix& x, const std::vector<float>& gamma,
                    const std::vector<float>& beta, float eps = 1e-5f);

/** In-place GELU (tanh approximation) on every element. */
void gelu(Matrix& x);

/** In-place ReLU on every element. */
void relu(Matrix& x);

/** x += other, element-wise (residual connection). */
void add_inplace(Matrix& x, const Matrix& other);

/** Adds @p bias (size = cols) to every row of @p x. */
void add_bias(Matrix& x, const std::vector<float>& bias);

} // namespace flat

#endif // FLAT_KERNELS_LAYER_OPS_H

#include "kernels/layer_ops.h"

#include <cmath>

#include "common/status.h"

namespace flat {

void
layernorm_rows(Matrix& x, const std::vector<float>& gamma,
               const std::vector<float>& beta, float eps)
{
    FLAT_CHECK(gamma.size() == x.cols() && beta.size() == x.cols(),
               "layernorm parameter size " << gamma.size() << "/"
                                           << beta.size() << " != cols "
                                           << x.cols());
    const std::size_t cols = x.cols();
    for (std::size_t r = 0; r < x.rows(); ++r) {
        float* row = x.row_ptr(r);
        float mean = 0.0f;
        for (std::size_t c = 0; c < cols; ++c) {
            mean += row[c];
        }
        mean /= static_cast<float>(cols);
        float var = 0.0f;
        for (std::size_t c = 0; c < cols; ++c) {
            const float d = row[c] - mean;
            var += d * d;
        }
        var /= static_cast<float>(cols);
        const float inv = 1.0f / std::sqrt(var + eps);
        for (std::size_t c = 0; c < cols; ++c) {
            row[c] = gamma[c] * (row[c] - mean) * inv + beta[c];
        }
    }
}

void
gelu(Matrix& x)
{
    // tanh approximation: 0.5 x (1 + tanh(sqrt(2/pi)(x + 0.044715 x^3)))
    constexpr float kC = 0.7978845608028654f; // sqrt(2/pi)
    for (std::size_t i = 0; i < x.size(); ++i) {
        const float v = x.data()[i];
        const float inner = kC * (v + 0.044715f * v * v * v);
        x.data()[i] = 0.5f * v * (1.0f + std::tanh(inner));
    }
}

void
relu(Matrix& x)
{
    for (std::size_t i = 0; i < x.size(); ++i) {
        x.data()[i] = std::max(0.0f, x.data()[i]);
    }
}

void
add_inplace(Matrix& x, const Matrix& other)
{
    FLAT_CHECK(x.rows() == other.rows() && x.cols() == other.cols(),
               "residual shape mismatch: " << x.rows() << "x" << x.cols()
                                           << " vs " << other.rows()
                                           << "x" << other.cols());
    for (std::size_t i = 0; i < x.size(); ++i) {
        x.data()[i] += other.data()[i];
    }
}

void
add_bias(Matrix& x, const std::vector<float>& bias)
{
    FLAT_CHECK(bias.size() == x.cols(),
               "bias size " << bias.size() << " != cols " << x.cols());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        float* row = x.row_ptr(r);
        for (std::size_t c = 0; c < x.cols(); ++c) {
            row[c] += bias[c];
        }
    }
}

} // namespace flat

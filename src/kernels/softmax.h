/**
 * @file
 * Numerically stable row softmax (the activation between L and A). The
 * reduction runs along the key dimension — the data dependency that
 * forces FLAT's basic execution unit to be whole rows (§4.2.1).
 */
#ifndef FLAT_KERNELS_SOFTMAX_H
#define FLAT_KERNELS_SOFTMAX_H

#include <cstddef>

#include "kernels/matrix.h"

namespace flat {

/** In-place stable softmax over each row of @p m. */
void softmax_rows(Matrix& m);

/** In-place stable softmax over rows [row_begin, row_end) of @p m. */
void softmax_rows(Matrix& m, std::size_t row_begin, std::size_t row_end);

/**
 * In-place causal-masked softmax: for output row r (global index
 * @p row_offset + local row), columns greater than the global row index
 * are masked to zero probability.
 */
void softmax_rows_causal(Matrix& m, std::size_t row_offset);

/** Scales every element of @p m by @p factor (the 1/sqrt(dk) scaling). */
void scale(Matrix& m, float factor);

} // namespace flat

#endif // FLAT_KERNELS_SOFTMAX_H

#include "kernels/attention.h"

#include <cmath>
#include <limits>

#include "kernels/softmax.h"

namespace flat {
namespace {

constexpr std::uint64_t kFloatBytes = sizeof(float);

std::uint64_t
bytes_of(const Matrix& m)
{
    return static_cast<std::uint64_t>(m.size()) * kFloatBytes;
}

void
check_attention_shapes(const Matrix& q, const Matrix& k, const Matrix& v)
{
    FLAT_CHECK(q.cols() == k.cols(),
               "q/k head dim mismatch: " << q.cols() << " vs " << k.cols());
    FLAT_CHECK(k.rows() == v.rows(),
               "k/v length mismatch: " << k.rows() << " vs " << v.rows());
}

} // namespace

Matrix
attention_reference(const Matrix& q, const Matrix& k, const Matrix& v,
                    const AttentionOptions& options, TrafficMeter* meter)
{
    check_attention_shapes(q, k, v);

    if (meter != nullptr) {
        meter->offchip_read("Q", bytes_of(q));
        meter->offchip_read("K", bytes_of(k));
    }

    // L: the full [N, N_kv] logits tensor is materialized and, in the
    // baseline dataflow, written back to DRAM.
    Matrix logits = matmul_transposed(q, k);
    if (options.scaled) {
        scale(logits, 1.0f / std::sqrt(static_cast<float>(q.cols())));
    }
    if (meter != nullptr) {
        meter->offchip_write("intermediate", bytes_of(logits));
    }

    // Softmax: DRAM round trip of the intermediate tensor.
    if (meter != nullptr) {
        meter->offchip_read("intermediate", bytes_of(logits));
    }
    if (options.causal) {
        softmax_rows_causal(logits, 0);
    } else {
        softmax_rows(logits);
    }
    if (meter != nullptr) {
        meter->offchip_write("intermediate", bytes_of(logits));
    }

    // A: reads the intermediate back and V, writes the output.
    if (meter != nullptr) {
        meter->offchip_read("intermediate", bytes_of(logits));
        meter->offchip_read("V", bytes_of(v));
    }
    Matrix out = matmul(logits, v);
    if (meter != nullptr) {
        meter->offchip_write("output", bytes_of(out));
    }
    return out;
}

Matrix
attention_flat(const Matrix& q, const Matrix& k, const Matrix& v,
               std::size_t row_tile, const AttentionOptions& options,
               TrafficMeter* meter)
{
    check_attention_shapes(q, k, v);
    FLAT_CHECK(row_tile > 0, "row tile R must be positive");

    const std::size_t n = q.rows();
    const std::size_t dk = q.cols();
    Matrix out(n, v.cols());

    // K and V are staged on-chip once per head (the 4*N*dk term of the
    // R-Gran footprint in Table 2).
    if (meter != nullptr) {
        meter->offchip_read("K", bytes_of(k));
        meter->offchip_read("V", bytes_of(v));
    }

    const float factor =
        options.scaled ? 1.0f / std::sqrt(static_cast<float>(dk)) : 1.0f;

    for (std::size_t row0 = 0; row0 < n; row0 += row_tile) {
        const std::size_t rows = std::min(row_tile, n - row0);

        // Fetch the Q row block for this pass.
        Matrix q_block(rows, dk);
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < dk; ++c) {
                q_block.at(r, c) = q.at(row0 + r, c);
            }
        }
        if (meter != nullptr) {
            meter->offchip_read("Q", bytes_of(q_block));
        }

        // Stage 1 (L): an [R, N_kv] logits slice — the FLAT-tile. It is
        // produced into the on-chip buffer and never leaves the chip.
        Matrix logits_block = matmul_transposed(q_block, k);
        if (factor != 1.0f) {
            scale(logits_block, factor);
        }
        if (meter != nullptr) {
            meter->onchip("intermediate", bytes_of(logits_block));
        }

        // Softmax on the SFU, straight from the on-chip slice. Each row
        // is complete (all N_kv columns), so this is exact.
        if (options.causal) {
            softmax_rows_causal(logits_block, row0);
        } else {
            softmax_rows(logits_block);
        }
        if (meter != nullptr) {
            meter->onchip("intermediate", bytes_of(logits_block));
        }

        // Stage 2 (A): consume the slice immediately.
        Matrix out_block = matmul(logits_block, v);
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < out.cols(); ++c) {
                out.at(row0 + r, c) = out_block.at(r, c);
            }
        }
        if (meter != nullptr) {
            meter->offchip_write("output", bytes_of(out_block));
        }
    }
    return out;
}

Matrix
attention_flash(const Matrix& q, const Matrix& k, const Matrix& v,
                std::size_t row_tile, std::size_t col_tile,
                const AttentionOptions& options, TrafficMeter* meter)
{
    check_attention_shapes(q, k, v);
    FLAT_CHECK(row_tile > 0, "row tile R must be positive");

    const std::size_t n = q.rows();
    const std::size_t n_kv = k.rows();
    const std::size_t dk = q.cols();
    if (col_tile == 0 || col_tile > n_kv) {
        col_tile = n_kv;
    }
    Matrix out(n, v.cols());

    // K and V are streamed column-block by column-block but each byte
    // still crosses the pin boundary once per head (the working set
    // held on chip at any instant is just one [C, dk] slice per
    // tensor).
    if (meter != nullptr) {
        meter->offchip_read("K", bytes_of(k));
        meter->offchip_read("V", bytes_of(v));
    }

    const float factor =
        options.scaled ? 1.0f / std::sqrt(static_cast<float>(dk)) : 1.0f;
    const float neg_inf = -std::numeric_limits<float>::infinity();

    for (std::size_t row0 = 0; row0 < n; row0 += row_tile) {
        const std::size_t rows = std::min(row_tile, n - row0);

        Matrix q_block(rows, dk);
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < dk; ++c) {
                q_block.at(r, c) = q.at(row0 + r, c);
            }
        }
        if (meter != nullptr) {
            meter->offchip_read("Q", bytes_of(q_block));
        }

        // Register-tier state of the pass: the output accumulator and
        // the per-row running (max, denominator) statistics.
        Matrix acc(rows, v.cols());
        std::vector<float> run_max(rows, neg_inf);
        std::vector<float> denom(rows, 0.0f);

        for (std::size_t col0 = 0; col0 < n_kv; col0 += col_tile) {
            const std::size_t cols = std::min(col_tile, n_kv - col0);

            Matrix k_slice(cols, dk);
            Matrix v_slice(cols, v.cols());
            for (std::size_t r = 0; r < cols; ++r) {
                for (std::size_t c = 0; c < dk; ++c) {
                    k_slice.at(r, c) = k.at(col0 + r, c);
                }
                for (std::size_t c = 0; c < v.cols(); ++c) {
                    v_slice.at(r, c) = v.at(col0 + r, c);
                }
            }

            // L on one [R, C] block. This is the only intermediate
            // that ever exists; it lives below SL (register tier).
            Matrix logits_block = matmul_transposed(q_block, k_slice);
            if (factor != 1.0f) {
                scale(logits_block, factor);
            }
            if (options.causal) {
                for (std::size_t r = 0; r < rows; ++r) {
                    const std::size_t global_row = row0 + r;
                    for (std::size_t c = 0; c < cols; ++c) {
                        if (col0 + c > global_row) {
                            logits_block.at(r, c) = neg_inf;
                        }
                    }
                }
            }
            if (meter != nullptr) {
                meter->onchip("intermediate", bytes_of(logits_block));
            }

            // Online-softmax update + A on the block: rescale the
            // accumulated output when the running max grows, then fold
            // this block's probabilities in.
            for (std::size_t r = 0; r < rows; ++r) {
                float* lrow = logits_block.row_ptr(r);
                float block_max = neg_inf;
                for (std::size_t c = 0; c < cols; ++c) {
                    block_max = std::max(block_max, lrow[c]);
                }
                const float new_max = std::max(run_max[r], block_max);
                if (new_max == neg_inf) {
                    continue; // fully masked so far: nothing to fold
                }
                if (new_max > run_max[r] && denom[r] != 0.0f) {
                    const float correction =
                        std::exp(run_max[r] - new_max);
                    denom[r] *= correction;
                    for (std::size_t c = 0; c < acc.cols(); ++c) {
                        acc.at(r, c) *= correction;
                    }
                }
                run_max[r] = new_max;
                float block_sum = 0.0f;
                for (std::size_t c = 0; c < cols; ++c) {
                    lrow[c] = std::exp(lrow[c] - new_max);
                    block_sum += lrow[c];
                }
                denom[r] += block_sum;
                for (std::size_t c = 0; c < cols; ++c) {
                    const float p = lrow[c];
                    if (p == 0.0f) {
                        continue;
                    }
                    for (std::size_t cc = 0; cc < acc.cols(); ++cc) {
                        acc.at(r, cc) += p * v_slice.at(c, cc);
                    }
                }
            }
        }

        for (std::size_t r = 0; r < rows; ++r) {
            const float inv =
                denom[r] != 0.0f ? 1.0f / denom[r] : 0.0f;
            for (std::size_t c = 0; c < out.cols(); ++c) {
                out.at(row0 + r, c) = acc.at(r, c) * inv;
            }
        }
        if (meter != nullptr) {
            meter->offchip_write("output",
                                 static_cast<std::uint64_t>(rows) *
                                     out.cols() * kFloatBytes);
        }
    }
    return out;
}

AttentionLayerWeights
AttentionLayerWeights::random(std::size_t d, std::uint64_t seed)
{
    AttentionLayerWeights w;
    w.wq = Matrix(d, d);
    w.wk = Matrix(d, d);
    w.wv = Matrix(d, d);
    w.wo = Matrix(d, d);
    fill_random(w.wq, seed + 1);
    fill_random(w.wk, seed + 2);
    fill_random(w.wv, seed + 3);
    fill_random(w.wo, seed + 4);
    // Scale down so deep compositions stay in a well-conditioned range.
    const float s = 1.0f / std::sqrt(static_cast<float>(d));
    scale(w.wq, s);
    scale(w.wk, s);
    scale(w.wv, s);
    scale(w.wo, s);
    return w;
}

Matrix
split_head(const Matrix& x, std::size_t num_heads, std::size_t h)
{
    FLAT_CHECK(num_heads > 0 && x.cols() % num_heads == 0,
               "heads (" << num_heads << ") must divide width "
                         << x.cols());
    FLAT_CHECK(h < num_heads, "head index out of range");
    const std::size_t dk = x.cols() / num_heads;
    Matrix out(x.rows(), dk);
    for (std::size_t r = 0; r < x.rows(); ++r) {
        for (std::size_t c = 0; c < dk; ++c) {
            out.at(r, c) = x.at(r, h * dk + c);
        }
    }
    return out;
}

Matrix
attention_layer_forward(const Matrix& x_q, const Matrix& x_kv,
                        const AttentionLayerWeights& weights,
                        std::size_t num_heads, std::size_t row_tile,
                        const AttentionOptions& options,
                        TrafficMeter* meter)
{
    FLAT_CHECK(x_q.cols() == weights.wq.rows(),
               "input width " << x_q.cols() << " != weight dim "
                              << weights.wq.rows());
    FLAT_CHECK(x_kv.cols() == x_q.cols(), "query/kv width mismatch");

    // Projections (activation-weight GEMMs; not the focus of the
    // instrumentation, charged once each).
    const Matrix q = matmul(x_q, weights.wq);
    const Matrix k = matmul(x_kv, weights.wk);
    const Matrix v = matmul(x_kv, weights.wv);
    if (meter != nullptr) {
        meter->offchip_read("X", bytes_of(x_q) + bytes_of(x_kv));
        meter->offchip_write("QKV", bytes_of(q) + bytes_of(k) +
                                        bytes_of(v));
    }

    const std::size_t dk = x_q.cols() / num_heads;
    Matrix concat(x_q.rows(), x_q.cols());
    for (std::size_t h = 0; h < num_heads; ++h) {
        const Matrix qh = split_head(q, num_heads, h);
        const Matrix kh = split_head(k, num_heads, h);
        const Matrix vh = split_head(v, num_heads, h);
        const Matrix oh =
            (row_tile == 0)
                ? attention_reference(qh, kh, vh, options, meter)
                : attention_flat(qh, kh, vh, row_tile, options, meter);
        for (std::size_t r = 0; r < concat.rows(); ++r) {
            for (std::size_t c = 0; c < dk; ++c) {
                concat.at(r, h * dk + c) = oh.at(r, c);
            }
        }
    }
    return matmul(concat, weights.wo);
}


namespace {

/** Softmax over columns [lo, hi) of one row; other columns zeroed. */
void
softmax_window_row(float* row, std::size_t cols, std::size_t lo,
                   std::size_t hi)
{
    float max_val = -std::numeric_limits<float>::infinity();
    for (std::size_t j = lo; j < hi; ++j) {
        max_val = std::max(max_val, row[j]);
    }
    float denom = 0.0f;
    for (std::size_t j = lo; j < hi; ++j) {
        row[j] = std::exp(row[j] - max_val);
        denom += row[j];
    }
    const float inv = 1.0f / denom;
    for (std::size_t j = 0; j < cols; ++j) {
        if (j >= lo && j < hi) {
            row[j] *= inv;
        } else {
            row[j] = 0.0f;
        }
    }
}

/** Clamped window bounds [lo, hi) for global query row @p i. */
void
window_bounds(std::size_t i, std::size_t n_kv, std::size_t window,
              bool causal, std::size_t* lo, std::size_t* hi)
{
    *lo = (i > window) ? i - window : 0;
    const std::size_t upper = causal ? i + 1 : i + window + 1;
    *hi = std::min(n_kv, upper);
}

} // namespace

Matrix
attention_local_reference(const Matrix& q, const Matrix& k,
                          const Matrix& v, std::size_t window,
                          const AttentionOptions& options,
                          TrafficMeter* meter)
{
    check_attention_shapes(q, k, v);
    FLAT_CHECK(q.rows() == k.rows(),
               "local attention assumes self-attention (N == N_kv)");

    if (meter != nullptr) {
        meter->offchip_read("Q", bytes_of(q));
        meter->offchip_read("K", bytes_of(k));
    }
    Matrix logits = matmul_transposed(q, k);
    if (options.scaled) {
        scale(logits, 1.0f / std::sqrt(static_cast<float>(q.cols())));
    }
    if (meter != nullptr) {
        meter->offchip_write("intermediate", bytes_of(logits));
        meter->offchip_read("intermediate", bytes_of(logits));
    }
    for (std::size_t r = 0; r < logits.rows(); ++r) {
        std::size_t lo = 0;
        std::size_t hi = 0;
        window_bounds(r, k.rows(), window, options.causal, &lo, &hi);
        softmax_window_row(logits.row_ptr(r), logits.cols(), lo, hi);
    }
    if (meter != nullptr) {
        meter->offchip_write("intermediate", bytes_of(logits));
        meter->offchip_read("intermediate", bytes_of(logits));
        meter->offchip_read("V", bytes_of(v));
    }
    Matrix out = matmul(logits, v);
    if (meter != nullptr) {
        meter->offchip_write("output", bytes_of(out));
    }
    return out;
}

Matrix
attention_flat_local(const Matrix& q, const Matrix& k, const Matrix& v,
                     std::size_t row_tile, std::size_t window,
                     const AttentionOptions& options, TrafficMeter* meter)
{
    check_attention_shapes(q, k, v);
    FLAT_CHECK(q.rows() == k.rows(),
               "local attention assumes self-attention (N == N_kv)");
    FLAT_CHECK(row_tile > 0, "row tile R must be positive");

    const std::size_t n = q.rows();
    const std::size_t dk = q.cols();
    Matrix out(n, v.cols());
    const float factor =
        options.scaled ? 1.0f / std::sqrt(static_cast<float>(dk)) : 1.0f;

    for (std::size_t row0 = 0; row0 < n; row0 += row_tile) {
        const std::size_t rows = std::min(row_tile, n - row0);
        // The union of the rows' windows: the only K/V slice this pass
        // ever touches.
        std::size_t pass_lo = 0;
        std::size_t pass_hi = 0;
        window_bounds(row0, n, window, /*causal=*/false, &pass_lo,
                      &pass_hi);
        std::size_t last_lo = 0;
        std::size_t last_hi = 0;
        window_bounds(row0 + rows - 1, n, window, options.causal,
                      &last_lo, &last_hi);
        pass_hi = std::max(pass_hi, last_hi);
        const std::size_t slice = pass_hi - pass_lo;

        // Fetch the Q block and the K/V window slices for this pass.
        Matrix q_block(rows, dk);
        Matrix k_slice(slice, dk);
        Matrix v_slice(slice, v.cols());
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < dk; ++c) {
                q_block.at(r, c) = q.at(row0 + r, c);
            }
        }
        for (std::size_t r = 0; r < slice; ++r) {
            for (std::size_t c = 0; c < dk; ++c) {
                k_slice.at(r, c) = k.at(pass_lo + r, c);
            }
            for (std::size_t c = 0; c < v.cols(); ++c) {
                v_slice.at(r, c) = v.at(pass_lo + r, c);
            }
        }
        if (meter != nullptr) {
            meter->offchip_read("Q", bytes_of(q_block));
            meter->offchip_read("K", bytes_of(k_slice));
            meter->offchip_read("V", bytes_of(v_slice));
        }

        Matrix logits_block = matmul_transposed(q_block, k_slice);
        if (factor != 1.0f) {
            scale(logits_block, factor);
        }
        if (meter != nullptr) {
            meter->onchip("intermediate", bytes_of(logits_block));
        }
        for (std::size_t r = 0; r < rows; ++r) {
            std::size_t lo = 0;
            std::size_t hi = 0;
            window_bounds(row0 + r, n, window, options.causal, &lo, &hi);
            // Translate to slice-local coordinates.
            softmax_window_row(logits_block.row_ptr(r),
                               logits_block.cols(), lo - pass_lo,
                               hi - pass_lo);
        }
        if (meter != nullptr) {
            meter->onchip("intermediate", bytes_of(logits_block));
        }

        Matrix out_block = matmul(logits_block, v_slice);
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < out.cols(); ++c) {
                out.at(row0 + r, c) = out_block.at(r, c);
            }
        }
        if (meter != nullptr) {
            meter->offchip_write("output", bytes_of(out_block));
        }
    }
    return out;
}

} // namespace flat


#include "kernels/transformer_block.h"

#include <cmath>

#include "kernels/layer_ops.h"
#include "kernels/softmax.h"

namespace flat {

TransformerBlockWeights
TransformerBlockWeights::random(std::size_t d, std::size_t ff,
                                std::uint64_t seed)
{
    TransformerBlockWeights w;
    w.attention = AttentionLayerWeights::random(d, seed);
    w.w_fc1 = Matrix(d, ff);
    w.w_fc2 = Matrix(ff, d);
    fill_random(w.w_fc1, seed + 10);
    fill_random(w.w_fc2, seed + 11);
    // Keep activations well-conditioned through the FF expansion.
    scale(w.w_fc1, 1.0f / std::sqrt(static_cast<float>(d)));
    scale(w.w_fc2, 1.0f / std::sqrt(static_cast<float>(ff)));
    w.b_fc1.assign(ff, 0.01f);
    w.b_fc2.assign(d, 0.01f);
    w.ln1_gamma.assign(d, 1.0f);
    w.ln1_beta.assign(d, 0.0f);
    w.ln2_gamma.assign(d, 1.0f);
    w.ln2_beta.assign(d, 0.0f);
    return w;
}

void
TransformerBlockWeights::validate() const
{
    const std::size_t d = attention.wq.rows();
    FLAT_CHECK(w_fc1.rows() == d, "FC1 input dim mismatch");
    FLAT_CHECK(w_fc2.cols() == d, "FC2 output dim mismatch");
    FLAT_CHECK(w_fc1.cols() == w_fc2.rows(), "FF inner dim mismatch");
    FLAT_CHECK(b_fc1.size() == w_fc1.cols(), "FC1 bias size mismatch");
    FLAT_CHECK(b_fc2.size() == w_fc2.cols(), "FC2 bias size mismatch");
    FLAT_CHECK(ln1_gamma.size() == d && ln1_beta.size() == d &&
                   ln2_gamma.size() == d && ln2_beta.size() == d,
               "layernorm parameter size mismatch");
}

Matrix
transformer_block_forward(const Matrix& x,
                          const TransformerBlockWeights& weights,
                          std::size_t num_heads, std::size_t row_tile,
                          const AttentionOptions& options,
                          TrafficMeter* meter)
{
    weights.validate();
    FLAT_CHECK(x.cols() == weights.attention.wq.rows(),
               "input width " << x.cols() << " != block width "
                              << weights.attention.wq.rows());

    // Attention sub-layer (pre-norm).
    Matrix normed = x;
    layernorm_rows(normed, weights.ln1_gamma, weights.ln1_beta);
    Matrix h = attention_layer_forward(normed, normed, weights.attention,
                                       num_heads, row_tile, options,
                                       meter);
    add_inplace(h, x);

    // Feed-forward sub-layer (pre-norm).
    Matrix ff_in = h;
    layernorm_rows(ff_in, weights.ln2_gamma, weights.ln2_beta);
    Matrix mid = matmul(ff_in, weights.w_fc1);
    add_bias(mid, weights.b_fc1);
    gelu(mid);
    Matrix out = matmul(mid, weights.w_fc2);
    add_bias(out, weights.b_fc2);
    if (meter != nullptr) {
        const std::uint64_t float_bytes = sizeof(float);
        meter->offchip_read("FC", (ff_in.size() + mid.size()) *
                                      float_bytes);
        meter->offchip_write("FC",
                             (mid.size() + out.size()) * float_bytes);
    }
    add_inplace(out, h);
    return out;
}

Matrix
transformer_stack_forward(const Matrix& x,
                          const TransformerBlockWeights& weights,
                          std::size_t num_heads, std::size_t num_blocks,
                          std::size_t row_tile,
                          const AttentionOptions& options,
                          TrafficMeter* meter)
{
    FLAT_CHECK(num_blocks > 0, "stack needs at least one block");
    Matrix out = x;
    for (std::size_t i = 0; i < num_blocks; ++i) {
        out = transformer_block_forward(out, weights, num_heads,
                                        row_tile, options, meter);
    }
    return out;
}

} // namespace flat

#include "kernels/matrix.h"

#include <cmath>
#include <cstdint>

namespace flat {

float
Matrix::max_abs_diff(const Matrix& other) const
{
    FLAT_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
               "shape mismatch: " << rows_ << "x" << cols_ << " vs "
                                  << other.rows_ << "x" << other.cols_);
    float max_diff = 0.0f;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        max_diff = std::max(max_diff,
                            std::fabs(data_[i] - other.data_[i]));
    }
    return max_diff;
}

void
fill_random(Matrix& m, std::uint64_t seed)
{
    // SplitMix64: deterministic across platforms, no <random> state.
    std::uint64_t state = seed + 0x9e3779b97f4a7c15ull;
    auto next = [&state]() {
        state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    };
    for (std::size_t i = 0; i < m.size(); ++i) {
        const double unit =
            static_cast<double>(next() >> 11) / 9007199254740992.0;
        m.data()[i] = static_cast<float>(2.0 * unit - 1.0);
    }
}

Matrix
matmul(const Matrix& a, const Matrix& b)
{
    FLAT_CHECK(a.cols() == b.rows(),
               "matmul shape mismatch: " << a.rows() << "x" << a.cols()
                                         << " * " << b.rows() << "x"
                                         << b.cols());
    Matrix c(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const float aik = a.at(i, k);
            const float* b_row = b.row_ptr(k);
            float* c_row = c.row_ptr(i);
            for (std::size_t j = 0; j < b.cols(); ++j) {
                c_row[j] += aik * b_row[j];
            }
        }
    }
    return c;
}

Matrix
matmul_transposed(const Matrix& a, const Matrix& b_transposed)
{
    FLAT_CHECK(a.cols() == b_transposed.cols(),
               "matmul_transposed inner-dim mismatch: "
                   << a.cols() << " vs " << b_transposed.cols());
    Matrix c(a.rows(), b_transposed.rows());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < b_transposed.rows(); ++j) {
            const float* a_row = a.row_ptr(i);
            const float* b_row = b_transposed.row_ptr(j);
            float acc = 0.0f;
            for (std::size_t k = 0; k < a.cols(); ++k) {
                acc += a_row[k] * b_row[k];
            }
            c.at(i, j) = acc;
        }
    }
    return c;
}

} // namespace flat

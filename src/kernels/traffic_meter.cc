#include "kernels/traffic_meter.h"

namespace flat {
namespace {

std::uint64_t
lookup(const std::map<std::string, std::uint64_t>& counters,
       const std::string& tensor)
{
    const auto it = counters.find(tensor);
    return (it != counters.end()) ? it->second : 0;
}

std::uint64_t
sum(const std::map<std::string, std::uint64_t>& counters)
{
    std::uint64_t total = 0;
    for (const auto& [name, bytes] : counters) {
        (void)name;
        total += bytes;
    }
    return total;
}

} // namespace

void
TrafficMeter::offchip_read(const std::string& tensor, std::uint64_t bytes)
{
    offchip_read_[tensor] += bytes;
}

void
TrafficMeter::offchip_write(const std::string& tensor, std::uint64_t bytes)
{
    offchip_write_[tensor] += bytes;
}

void
TrafficMeter::onchip(const std::string& tensor, std::uint64_t bytes)
{
    onchip_[tensor] += bytes;
}

std::uint64_t
TrafficMeter::offchip_bytes(const std::string& tensor) const
{
    return lookup(offchip_read_, tensor) + lookup(offchip_write_, tensor);
}

std::uint64_t
TrafficMeter::onchip_bytes(const std::string& tensor) const
{
    return lookup(onchip_, tensor);
}

std::uint64_t
TrafficMeter::total_offchip() const
{
    return sum(offchip_read_) + sum(offchip_write_);
}

std::uint64_t
TrafficMeter::total_onchip() const
{
    return sum(onchip_);
}

std::map<std::string, std::uint64_t>
TrafficMeter::offchip_by_tensor() const
{
    std::map<std::string, std::uint64_t> out = offchip_read_;
    for (const auto& [tensor, bytes] : offchip_write_) {
        out[tensor] += bytes;
    }
    return out;
}

void
TrafficMeter::reset()
{
    offchip_read_.clear();
    offchip_write_.clear();
    onchip_.clear();
}

} // namespace flat

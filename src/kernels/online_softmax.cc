#include "kernels/online_softmax.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace flat {
namespace {

/**
 * Online softmax over columns [0, valid_cols) of one row; the tail
 * [valid_cols, cols) is zeroed. The single-block case never takes the
 * rescale branch and is bit-identical to softmax_one_row in
 * softmax.cc: same block maximum, same element order in the
 * denominator, and the final normalization multiplies by exactly
 * 1/denominator.
 */
void
online_softmax_one_row(float* row, std::size_t cols,
                       std::size_t valid_cols, std::size_t block)
{
    if (block == 0) {
        block = valid_cols > 0 ? valid_cols : 1;
    }
    float run_max = -std::numeric_limits<float>::infinity();
    float denom = 0.0f;
    for (std::size_t b0 = 0; b0 < valid_cols; b0 += block) {
        const std::size_t b1 = std::min(valid_cols, b0 + block);
        float block_max = -std::numeric_limits<float>::infinity();
        for (std::size_t j = b0; j < b1; ++j) {
            block_max = std::max(block_max, row[j]);
        }
        const float new_max = std::max(run_max, block_max);
        if (new_max > run_max && denom != 0.0f) {
            // The maximum grew: everything already exponentiated was
            // relative to the stale maximum. One multiply per stored
            // element and one on the denominator re-bases them.
            const float correction = std::exp(run_max - new_max);
            for (std::size_t j = 0; j < b0; ++j) {
                row[j] *= correction;
            }
            denom *= correction;
        }
        run_max = new_max;
        float block_sum = 0.0f;
        for (std::size_t j = b0; j < b1; ++j) {
            row[j] = std::exp(row[j] - run_max);
            block_sum += row[j];
        }
        denom += block_sum;
    }
    const float inv = 1.0f / denom;
    for (std::size_t j = 0; j < valid_cols; ++j) {
        row[j] *= inv;
    }
    for (std::size_t j = valid_cols; j < cols; ++j) {
        row[j] = 0.0f;
    }
}

} // namespace

void
online_softmax_rows(Matrix& m, std::size_t col_block)
{
    for (std::size_t r = 0; r < m.rows(); ++r) {
        online_softmax_one_row(m.row_ptr(r), m.cols(), m.cols(),
                               col_block);
    }
}

void
online_softmax_rows_causal(Matrix& m, std::size_t row_offset,
                           std::size_t col_block)
{
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const std::size_t valid =
            std::min(m.cols(), row_offset + r + 1);
        online_softmax_one_row(m.row_ptr(r), m.cols(), valid, col_block);
    }
}

} // namespace flat

/**
 * @file
 * A complete pre-norm transformer block (Figure 1(a)): layer norm,
 * multi-head attention (baseline or FLAT dataflow), residual, layer
 * norm, position-wise feed-forward with GELU, residual. This is the
 * functional counterpart of the cost model's Block scope.
 */
#ifndef FLAT_KERNELS_TRANSFORMER_BLOCK_H
#define FLAT_KERNELS_TRANSFORMER_BLOCK_H

#include <cstddef>
#include <vector>

#include "kernels/attention.h"
#include "kernels/matrix.h"
#include "kernels/traffic_meter.h"

namespace flat {

/** All parameters of one transformer block. */
struct TransformerBlockWeights {
    AttentionLayerWeights attention;

    Matrix w_fc1; ///< [D, FF]
    Matrix w_fc2; ///< [FF, D]
    std::vector<float> b_fc1;
    std::vector<float> b_fc2;

    std::vector<float> ln1_gamma;
    std::vector<float> ln1_beta;
    std::vector<float> ln2_gamma;
    std::vector<float> ln2_beta;

    /** Deterministically random weights (identity layer norms). */
    static TransformerBlockWeights random(std::size_t d, std::size_t ff,
                                          std::uint64_t seed);

    /** Throws flat::Error if the shapes are inconsistent. */
    void validate() const;
};

/**
 * Forward pass of one pre-norm block:
 *   h = x + MHA(LN1(x));  out = h + FC2(GELU(FC1(LN2(h)))).
 *
 * @param row_tile 0 => baseline attention dataflow; >0 => FLAT with
 *        that R (numerically identical either way).
 */
Matrix transformer_block_forward(const Matrix& x,
                                 const TransformerBlockWeights& weights,
                                 std::size_t num_heads,
                                 std::size_t row_tile,
                                 const AttentionOptions& options = {},
                                 TrafficMeter* meter = nullptr);

/** Stacks @p num_blocks applications of the same block weights. */
Matrix transformer_stack_forward(const Matrix& x,
                                 const TransformerBlockWeights& weights,
                                 std::size_t num_heads,
                                 std::size_t num_blocks,
                                 std::size_t row_tile,
                                 const AttentionOptions& options = {},
                                 TrafficMeter* meter = nullptr);

} // namespace flat

#endif // FLAT_KERNELS_TRANSFORMER_BLOCK_H

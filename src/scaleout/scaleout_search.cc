#include "scaleout/scaleout_search.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>

#include "common/cancellation.h"
#include "common/status.h"
#include "energy/energy_model.h"

namespace flat {
namespace {

/** Axis enumeration order — also the deterministic tie-break order. */
constexpr ShardAxis kAxisOrder[] = {ShardAxis::kBatch, ShardAxis::kHead,
                                    ShardAxis::kSequence};

bool
axis_feasible(const AttentionDims& dims, ShardAxis axis,
              std::uint32_t devices)
{
    const std::uint64_t d = devices;
    switch (axis) {
      case ShardAxis::kBatch:
        return d <= dims.batch;
      case ShardAxis::kHead:
        return d <= dims.heads;
      case ShardAxis::kSequence:
        return d <= dims.q_len && d <= dims.kv_len;
      case ShardAxis::kAuto:
        return false;
    }
    return false;
}

} // namespace

double
ScaleOutSearchPoint::objective_value(Objective objective) const
{
    return flat::objective_value(objective, cost.cycles, total_energy_j);
}

ScaleOutSearchResult
search_scaleout(const AccelConfig& accel, const AttentionDims& dims,
                const ScaleOutSearchOptions& opt)
{
    dims.validate();
    opt.fabric.validate();

    std::vector<std::uint32_t> device_counts = opt.device_counts;
    if (device_counts.empty()) {
        device_counts.push_back(opt.fabric.devices);
    }
    std::sort(device_counts.begin(), device_counts.end());
    device_counts.erase(
        std::unique(device_counts.begin(), device_counts.end()),
        device_counts.end());

    std::vector<ShardAxis> axes;
    if (opt.fabric.axis == ShardAxis::kAuto) {
        axes.assign(std::begin(kAxisOrder), std::end(kAxisOrder));
    } else {
        axes.push_back(opt.fabric.axis);
    }

    AttentionSearchOptions inner = opt.attention;
    inner.fused = true; // the scale-out model executes the FLAT style

    const EnergyTable table = EnergyTable::for_accel(accel);

    // Different (devices, axis) points often shard to the SAME
    // per-device dims (ceil_div plateaus, degenerate axes), and the
    // level-1 search depends only on those dims — memoize it per call.
    // The evaluation cache below it still shares the per-slice tables
    // across distinct dims, but this skips whole searches.
    std::map<std::array<std::uint64_t, 5>, AttentionSearchResult>
        inner_memo;
    const auto inner_search =
        [&](const AttentionDims& device_dims) -> const AttentionSearchResult& {
        const std::array<std::uint64_t, 5> key = {
            device_dims.batch, device_dims.heads, device_dims.q_len,
            device_dims.kv_len, device_dims.head_dim};
        auto it = inner_memo.find(key);
        if (it == inner_memo.end()) {
            it = inner_memo
                     .emplace(key,
                              search_attention(accel, device_dims, inner))
                     .first;
        }
        return it->second;
    };

    ScaleOutSearchResult out;
    double best_value = 0.0;
    for (const std::uint32_t devices : device_counts) {
        FLAT_CHECK(devices >= 1,
                   "scale-out needs at least one device per point");
        for (const ShardAxis axis : axes) {
            // Cooperative cancellation between (devices x axis) points;
            // the inner searches poll at finer granularity themselves
            // (and checkpoint completed slices via inner.journal).
            if (inner.cancel != nullptr) {
                inner.cancel->poll();
            }
            if (devices > 1 && !axis_feasible(dims, axis, devices)) {
                ++out.infeasible;
                continue;
            }
            ScaleOutConfig fabric = opt.fabric;
            fabric.devices = devices;
            fabric.axis = axis;

            // Level 1: best per-device dataflow on the sharded dims
            // (deterministic for any thread count, pruning on or off).
            const AttentionDims device_dims =
                devices == 1
                    ? dims
                    : shard_attention_dims(dims, axis, devices);
            const AttentionSearchResult& found =
                inner_search(device_dims);
            if (!found.found) {
                continue;
            }

            // Level 2: end-to-end evaluation with collectives.
            ScaleOutSearchPoint point;
            point.cost = model_scaleout_attention(
                accel, dims, found.best.dataflow, fabric);
            point.dataflow = found.best.dataflow;
            point.evaluated = found.evaluated;
            point.pruned = found.pruned;
            point.total_energy_j =
                estimate_energy(table, point.cost.timeline.activity)
                    .total() *
                devices;

            const double value =
                point.objective_value(inner.objective);
            // Strict improvement keeps the earlier enumeration point
            // on ties: the order above is the tie-break.
            if (!out.found || value < best_value) {
                out.best = point;
                best_value = value;
                out.found = true;
            }
            out.points.push_back(std::move(point));

            if (devices == 1) {
                break; // every axis degenerates to the same point
            }
        }
    }
    return out;
}

} // namespace flat

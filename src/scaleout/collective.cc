#include "scaleout/collective.h"

#include <cmath>

#include "common/status.h"

namespace flat {

const char*
to_string(CollectiveKind kind)
{
    switch (kind) {
      case CollectiveKind::kAllGather:
        return "all-gather";
      case CollectiveKind::kAllReduce:
        return "all-reduce";
    }
    return "all-gather";
}

CollectiveCost
model_collective(CollectiveKind kind, LinkTopology topology,
                 std::uint32_t devices, double tensor_bytes)
{
    FLAT_CHECK(devices >= 1, "collective needs at least one device");
    FLAT_CHECK(std::isfinite(tensor_bytes) && tensor_bytes >= 0.0,
               "collective tensor size must be non-negative, got "
                   << tensor_bytes);
    CollectiveCost cost;
    if (devices == 1) {
        return cost; // nothing to exchange
    }

    const double d = static_cast<double>(devices);
    const double steps =
        topology == LinkTopology::kRing
            ? d - 1.0
            : std::ceil(std::log2(d));

    // Bandwidth-optimal volume: each device is missing (D-1)/D of the
    // tensor (all-gather); a reduce-scatter + all-gather doubles it.
    const double gather_bytes = tensor_bytes * (d - 1.0) / d;
    switch (kind) {
      case CollectiveKind::kAllGather:
        cost.steps = steps;
        cost.bytes_in = gather_bytes;
        break;
      case CollectiveKind::kAllReduce:
        cost.steps = 2.0 * steps;
        cost.bytes_in = 2.0 * gather_bytes;
        break;
    }
    cost.bytes_out = cost.bytes_in;
    return cost;
}

Phase
collective_phase(std::string label, int group, CollectiveKind kind,
                 const ScaleOutConfig& fabric, const AccelConfig& accel,
                 double tensor_bytes)
{
    const CollectiveCost cost = model_collective(
        kind, fabric.topology, fabric.devices, tensor_bytes);

    Phase phase;
    phase.label = std::move(label);
    phase.stage = StageTag::kCollective;
    phase.group = group;
    phase.activity.traffic.link_in = cost.bytes_in;
    phase.activity.traffic.link_out = cost.bytes_out;
    phase.link_latency_cycles =
        cost.steps * fabric.link_latency_cycles(accel);
    return phase;
}

} // namespace flat

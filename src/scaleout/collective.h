/**
 * @file
 * Analytic cost models for the inter-device collectives the scale-out
 * model emits: all-gather (head-sharded output, sequence-sharded KV)
 * and all-reduce (sequence-sharded partial-softmax rescale).
 *
 * Both topologies move the bandwidth-optimal byte volume per device —
 * S*(D-1)/D for an all-gather, twice that for an all-reduce — and
 * differ in the number of serialized steps, each of which exposes one
 * link hop latency: D-1 steps on a ring, ceil(log2 D) on a binomial
 * tree (recursive doubling).
 */
#ifndef FLAT_SCALEOUT_COLLECTIVE_H
#define FLAT_SCALEOUT_COLLECTIVE_H

#include <cstdint>
#include <string>

#include "arch/accel_config.h"
#include "arch/scaleout_config.h"
#include "costmodel/timeline.h"

namespace flat {

/** Collective operation family. */
enum class CollectiveKind {
    kAllGather, ///< every device ends with the full tensor
    kAllReduce, ///< every device ends with the element-wise reduction
};

/** Short stable name ("all-gather", "all-reduce"). */
const char* to_string(CollectiveKind kind);

/** Per-device cost of one collective over @p devices devices. */
struct CollectiveCost {
    /** Serialized fabric steps (each exposes one hop latency). */
    double steps = 0.0;

    /** Bytes received per device over the whole collective. */
    double bytes_in = 0.0;

    /** Bytes sent per device (equal to bytes_in for both families). */
    double bytes_out = 0.0;
};

/**
 * Cost of a @p kind collective of a @p tensor_bytes-byte tensor (the
 * FULL logical tensor, summed over shards) across @p devices devices
 * on a @p topology fabric. devices == 1 returns an all-zero cost.
 */
CollectiveCost model_collective(CollectiveKind kind,
                                LinkTopology topology,
                                std::uint32_t devices,
                                double tensor_bytes);

/**
 * Builds the timeline phase of one collective: link bytes in the
 * activity ledger, hop latencies in link_latency_cycles, tagged
 * StageTag::kCollective. The caller assigns it to an overlap group
 * (steady-state group to overlap with compute, a fresh trailing group
 * for an exposed epilogue).
 */
Phase collective_phase(std::string label, int group, CollectiveKind kind,
                       const ScaleOutConfig& fabric,
                       const AccelConfig& accel, double tensor_bytes);

} // namespace flat

#endif // FLAT_SCALEOUT_COLLECTIVE_H

/**
 * @file
 * Scale-out DSE: extends the attention design space by the shard axis
 * and the device count. Two-level search — the per-device dataflow is
 * found by the existing search_attention() on the sharded dims
 * (inheriting its parallel sweep, lower-bound pruning and bit-identical
 * deterministic reduction), and the (axis x devices) combination is
 * then chosen serially by the end-to-end objective: collective-aware
 * layer latency and fleet-total energy.
 */
#ifndef FLAT_SCALEOUT_SCALEOUT_SEARCH_H
#define FLAT_SCALEOUT_SCALEOUT_SEARCH_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dse/search.h"
#include "scaleout/scaleout_model.h"

namespace flat {

/** Search-space description for the scale-out DSE. */
struct ScaleOutSearchOptions {
    /** Inner per-device dataflow search (objective, threads, prune,
     *  quick, candidate menus). The fused FLAT space is searched. */
    AttentionSearchOptions attention;

    /** Fabric description. fabric.axis == kAuto sweeps all feasible
     *  axes; a concrete axis pins it. */
    ScaleOutConfig fabric;

    /** Device counts to sweep; empty = just fabric.devices. */
    std::vector<std::uint32_t> device_counts;
};

/** One evaluated (axis x devices) combination. */
struct ScaleOutSearchPoint {
    ScaleOutCost cost;

    /** Winning per-device dataflow. */
    FusedDataflow dataflow;

    /** Fleet-total energy: one device's ledger (collective traffic
     *  included) times the device count. */
    double total_energy_j = 0.0;

    /** Inner-search accounting. */
    std::size_t evaluated = 0;
    std::size_t pruned = 0;

    /** Objective value (lower is better) under @p objective. */
    double objective_value(Objective objective) const;
};

/** Scale-out DSE outcome. */
struct ScaleOutSearchResult {
    ScaleOutSearchPoint best;
    bool found = false;

    /** Every feasible combination in deterministic enumeration order
     *  (device counts ascending; axes batch, head, seq). */
    std::vector<ScaleOutSearchPoint> points;

    /** Combinations skipped as infeasible (axis extent < devices). */
    std::size_t infeasible = 0;
};

/**
 * Sweeps (axis x devices), returning the end-to-end best combination.
 * The enumeration is serial and the inner search is bit-identical for
 * any thread count, so the whole result is deterministic; ties break
 * toward the earlier enumeration point, then the dataflow tag.
 */
ScaleOutSearchResult search_scaleout(const AccelConfig& accel,
                                     const AttentionDims& dims,
                                     const ScaleOutSearchOptions& opt);

} // namespace flat

#endif // FLAT_SCALEOUT_SCALEOUT_SEARCH_H

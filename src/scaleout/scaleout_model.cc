#include "scaleout/scaleout_model.h"

#include <utility>
#include <vector>

#include "common/math_util.h"
#include "common/status.h"

namespace flat {
namespace {

/** First group holding real (non-pace-only) work: the steady window an
 *  overlapped collective hides under. */
int
steady_group(const std::vector<Phase>& phases)
{
    for (const Phase& phase : phases) {
        if (!phase.pace_only) {
            return phase.group;
        }
    }
    return 0;
}

} // namespace

AttentionDims
shard_attention_dims(const AttentionDims& dims, ShardAxis axis,
                     std::uint32_t devices)
{
    FLAT_CHECK(devices >= 1, "scale-out needs at least one device");
    const std::uint64_t d = devices;
    AttentionDims out = dims;
    switch (axis) {
      case ShardAxis::kBatch:
        FLAT_CHECK(d <= dims.batch,
                   "cannot shard batch=" << dims.batch << " across "
                                         << devices << " devices");
        out.batch = ceil_div(dims.batch, d);
        break;
      case ShardAxis::kHead:
        FLAT_CHECK(d <= dims.heads,
                   "cannot shard heads=" << dims.heads << " across "
                                         << devices << " devices");
        out.heads = ceil_div(dims.heads, d);
        // K/V heads shard alongside; once a group spans devices each
        // keeps (at least) one replicated K/V head.
        out.kv_heads = std::min(
            out.heads,
            std::max<std::uint64_t>(1,
                                    ceil_div(dims.kv_heads_eff(), d)));
        break;
      case ShardAxis::kSequence:
        FLAT_CHECK(d <= dims.q_len && d <= dims.kv_len,
                   "cannot shard sequence (q_len="
                       << dims.q_len << ", kv_len=" << dims.kv_len
                       << ") across " << devices << " devices");
        out.q_len = ceil_div(dims.q_len, d);
        // kv stays full: the device gathers the other shards' K/V.
        break;
      case ShardAxis::kAuto:
        FLAT_FAIL("shard axis 'auto' must be resolved by the scale-out "
                  "search before sharding");
    }
    return out;
}

ScaleOutCost
model_scaleout_attention(const ExecutionStyle& style,
                         const AccelConfig& accel,
                         const AttentionDims& dims,
                         const FusedDataflow& dataflow,
                         const ScaleOutConfig& fabric)
{
    fabric.validate();

    ScaleOutCost out;
    out.devices = fabric.devices;

    if (fabric.single_device()) {
        // The exact pre-scale-out path: same emitter, same evaluation,
        // no link bandwidth, zero collective phases.
        out.axis = fabric.axis == ShardAxis::kAuto ? ShardAxis::kBatch
                                                   : fabric.axis;
        out.device_dims = dims;
        out.timeline = attention_timeline(style, accel, dims, dataflow);
        out.cycles = out.timeline.cycles;
        return out;
    }

    FLAT_CHECK(fabric.axis != ShardAxis::kAuto,
               "shard axis 'auto' must be resolved by the scale-out "
               "search before modeling");
    out.axis = fabric.axis;
    out.device_dims =
        shard_attention_dims(dims, fabric.axis, fabric.devices);

    AttentionPhases emitted =
        attention_phases(style, accel, out.device_dims, dataflow);
    const int steady = steady_group(emitted.phases);
    const int epilogue = emitted.max_group() + 1;
    const double bpe = accel.bytes_per_element;

    switch (fabric.axis) {
      case ShardAxis::kBatch:
        break; // independent shards, nothing to exchange
      case ShardAxis::kHead: {
        // Gather the full attention output (B x H x N x dk) so every
        // device leaves the layer with all heads, as the following
        // output projection expects. Exposed: nothing left to hide it
        // under once the last head finishes.
        const double out_bytes = static_cast<double>(dims.batch) *
                                 dims.heads * dims.q_len *
                                 dims.head_dim * bpe;
        emitted.phases.push_back(collective_phase(
            "all-gather attention output (heads)", epilogue,
            CollectiveKind::kAllGather, fabric, accel, out_bytes));
        break;
      }
      case ShardAxis::kSequence: {
        // K and V rows live sharded; the device streams the other
        // shards in while its own L/A slices run, so the all-gather
        // joins the steady overlap group.
        const double kv_bytes = 2.0 * static_cast<double>(dims.batch) *
                                dims.heads * dims.kv_len *
                                dims.head_dim * bpe;
        emitted.phases.push_back(collective_phase(
            "all-gather K/V shards (overlapped)", steady,
            CollectiveKind::kAllGather, fabric, accel, kv_bytes));

        // Online-softmax rescale: 2 statistics (running max, running
        // sum) per local row, reduced across devices at the end.
        const double stat_bytes = 2.0 *
                                  static_cast<double>(dims.batch) *
                                  dims.heads *
                                  out.device_dims.q_len * bpe;
        emitted.phases.push_back(collective_phase(
            "all-reduce softmax stats (rescale)", epilogue,
            CollectiveKind::kAllReduce, fabric, accel, stat_bytes));
        break;
      }
      case ShardAxis::kAuto:
        break; // rejected above
    }

    out.timeline = evaluate_timeline(
        std::move(emitted.phases), accel, emitted.overlap,
        fabric.link_bytes_per_cycle(accel));
    out.cycles = out.timeline.cycles;
    out.link_bytes_per_device = out.timeline.activity.traffic.total_link();

    for (const GroupTiming& group : out.timeline.groups) {
        bool all_collective = !group.phase_indices.empty();
        bool any_collective = false;
        for (const std::size_t idx : group.phase_indices) {
            const bool is_collective =
                out.timeline.phases[idx].stage == StageTag::kCollective;
            all_collective = all_collective && is_collective;
            any_collective = any_collective || is_collective;
        }
        if (all_collective) {
            out.exposed_collective_cycles += group.latency;
        } else if (any_collective) {
            out.overlapped_link_cycles += group.lanes.link;
        }
    }
    for (const Phase& phase : out.timeline.phases) {
        if (phase.stage == StageTag::kCollective) {
            ++out.collective_phases;
        }
    }
    return out;
}

ScaleOutCost
model_scaleout_attention(const AccelConfig& accel,
                         const AttentionDims& dims,
                         const FusedDataflow& dataflow,
                         const ScaleOutConfig& fabric)
{
    return model_scaleout_attention(flat_execution_style(), accel, dims,
                                    dataflow, fabric);
}

} // namespace flat

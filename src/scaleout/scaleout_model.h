/**
 * @file
 * Multi-accelerator attention model: shards one attention layer across
 * D identical FLAT devices along the batch, head or sequence axis and
 * evaluates ONE device's timeline — per-device compute/memory phases
 * plus the collective phases the sharding implies — in the same
 * evaluate_timeline() arbitration engine as the single-device models.
 *
 * Sharding semantics (devices all execute the same shard shape, the
 * largest one when the axis does not divide evenly):
 *  - batch:    B -> ceil(B/D). Fully independent; zero collectives.
 *  - head:     H -> ceil(H/D). Each device computes full rows for its
 *              heads; the attention output is all-gathered once at the
 *              end of the layer (exposed epilogue group).
 *  - sequence: N -> ceil(N/D) query rows; K/V are sharded the same way,
 *              so each device all-gathers the full K/V tensors while
 *              the steady-state compute runs (overlapped: the
 *              collective joins the steady overlap group), and a small
 *              all-reduce of the per-row online-softmax statistics
 *              (2 elements per local row) rescales the partial results
 *              in an exposed epilogue.
 *
 * D=1 emits zero collective phases and returns the exact single-device
 * timeline, bit for bit.
 */
#ifndef FLAT_SCALEOUT_SCALEOUT_MODEL_H
#define FLAT_SCALEOUT_SCALEOUT_MODEL_H

#include <cstddef>
#include <cstdint>

#include "arch/accel_config.h"
#include "arch/scaleout_config.h"
#include "costmodel/attention_cost.h"
#include "costmodel/timeline.h"
#include "dataflow/fused_dataflow.h"
#include "scaleout/collective.h"

namespace flat {

/**
 * Shards @p dims along @p axis over @p devices devices. Throws
 * flat::Error when infeasible (more devices than the axis extent; the
 * sequence axis shards both N and kv, so both must cover D).
 */
AttentionDims shard_attention_dims(const AttentionDims& dims,
                                   ShardAxis axis, std::uint32_t devices);

/** Evaluated scale-out outcome (one device's view of the layer). */
struct ScaleOutCost {
    std::uint32_t devices = 1;
    ShardAxis axis = ShardAxis::kBatch;

    /** Per-device shard actually modeled. */
    AttentionDims device_dims;

    /** One device's evaluated timeline, collectives included. */
    TimelineResult timeline;

    /** End-to-end layer latency == timeline.cycles (one arbitration
     *  engine; devices run in lockstep on equal shards). */
    double cycles = 0.0;

    /** Latency of the exposed (non-overlapped) collective groups. */
    double exposed_collective_cycles = 0.0;

    /** Link-lane cycles inside compute groups (hidden unless the link
     *  paces the group). */
    double overlapped_link_cycles = 0.0;

    /** Fabric bytes moved per device (send + receive). */
    double link_bytes_per_device = 0.0;

    /** Number of collective phases emitted (0 when devices == 1). */
    std::size_t collective_phases = 0;
};

/**
 * Models the sharded layer on @p accel devices connected by
 * @p fabric, executing @p dataflow under @p style per device. The
 * style's emitted phases are the seam: collective phases are appended
 * to them and the union runs through the same evaluate_timeline()
 * arbitration the single-device entry points use. @p fabric.axis
 * selects the shard axis and must not be kAuto (the scale-out DSE
 * resolves kAuto). With fabric.devices == 1 the result wraps
 * attention_timeline(style, ...) unchanged.
 */
ScaleOutCost model_scaleout_attention(const ExecutionStyle& style,
                                      const AccelConfig& accel,
                                      const AttentionDims& dims,
                                      const FusedDataflow& dataflow,
                                      const ScaleOutConfig& fabric);

/** Historical entry point: the FLAT style per device. */
ScaleOutCost model_scaleout_attention(const AccelConfig& accel,
                                      const AttentionDims& dims,
                                      const FusedDataflow& dataflow,
                                      const ScaleOutConfig& fabric);

} // namespace flat

#endif // FLAT_SCALEOUT_SCALEOUT_MODEL_H

/**
 * @file
 * Dataflow configuration of a single (non-fused) operator: intra-operator
 * L2 tiling, SG-level loop order, PE-array stationarity, and the optional
 * L3 staging tile with per-tensor enable flags (Base / Base-X in Fig. 7b).
 */
#ifndef FLAT_DATAFLOW_OPERATOR_DATAFLOW_H
#define FLAT_DATAFLOW_OPERATOR_DATAFLOW_H

#include <cstdint>
#include <string>

#include "dataflow/granularity.h"
#include "dataflow/tiling.h"
#include "workload/gemm_shape.h"

namespace flat {

/** Per-tensor L3 staging choices for one operator. */
struct L3StageFlags {
    bool a = false; ///< stage the full (per-pass) A operand in SG
    bool b = false; ///< stage the full (per-pass) B operand in SG
    bool c = false; ///< stage the full (per-pass) C output in SG

    bool any() const { return a || b || c; }

    std::string tag() const;
};

/** Complete dataflow description of one non-fused operator. */
struct OperatorDataflow {
    L2Tile l2;
    LoopOrder order = LoopOrder::kMKN;
    Stationarity stationarity = Stationarity::kOutputStationary;

    /** L3 staging granularity over GEMM instances. Base has no L3 tile
     *  (flags all false); Base-X sets flags with X granularity. */
    CrossLoop cross;
    L3StageFlags l3;

    std::string tag() const;

    void validate() const;
};

/**
 * Live SG footprint in bytes of running @p shape with @p dataflow
 * (Table 1 / §3.2 "live memory footprint" for single operators).
 *
 * Staged tensors occupy their full per-pass size, double-buffered
 * (they exchange data with off-chip memory); non-staged tensors occupy
 * two L2 tiles (active + prefetch).
 */
std::uint64_t operator_live_footprint(const OperatorDataflow& dataflow,
                                      const GemmShape& shape,
                                      std::uint32_t bytes_per_element);

} // namespace flat

#endif // FLAT_DATAFLOW_OPERATOR_DATAFLOW_H

/**
 * @file
 * Execution granularity of the FLAT-tile / L3 staging level (§4.2.2).
 *
 * The cross-operator (outer) loop iterates over units of work whose
 * intermediate-tensor slice is staged on-chip. From coarsest to finest:
 * Batch-Multi-Head (the whole tensor), Batch, Head, and Row (R rows of
 * one head's logits — the finest unit that keeps the softmax row
 * reduction intact).
 *
 * Column granularity goes below the R-Gran floor: an online softmax
 * (running max/sum with rescaling) removes the whole-row reduction
 * dependency, so the logits slice can be streamed C key-columns at a
 * time and the running (R x C) tile plus the output accumulator live in
 * a register-tier staging level below SL instead of the SG.
 */
#ifndef FLAT_DATAFLOW_GRANULARITY_H
#define FLAT_DATAFLOW_GRANULARITY_H

#include <cstdint>
#include <string>

namespace flat {

/** FLAT-tile granularity (M/B/H/R-Gran in the paper, plus the
 *  column-blocked level online softmax unlocks below R-Gran). */
enum class Granularity {
    kMulti,  ///< M-Gran: whole batched multi-head tensor in one pass
    kBatch,  ///< B-Gran: one batch sample (all heads) per pass
    kHead,   ///< H-Gran: one head per pass
    kRow,    ///< R-Gran: R logits rows of one head per pass
    kColumn, ///< C-Gran: R rows streamed C key-columns at a time
};

std::string to_string(Granularity granularity);

/** Cross-loop (outer loop) configuration of the fused operator. */
struct CrossLoop {
    Granularity granularity = Granularity::kMulti;

    /** Row-tile size R; meaningful only for R/C-Gran (must divide work
     *  in ceil fashion, any positive value allowed). */
    std::uint64_t rows = 0;

    /** Column-tile size C (key/value positions per streamed block);
     *  meaningful only for C-Gran. */
    std::uint64_t cols = 0;

    /** Human-readable tag, e.g. "M", "B", "H", "R64", "R64C256". */
    std::string tag() const;

    /** Throws flat::Error if R/C-Gran lack positive tile sizes. */
    void validate() const;
};

/**
 * Work covered by a single cross-loop pass and the number of passes for
 * a workload of @p batch samples, @p heads heads and @p query_rows
 * logits rows per head.
 */
struct CrossLoopExtent {
    std::uint64_t passes = 1;             ///< cross-loop trip count
    std::uint64_t instances_per_pass = 1; ///< (batch x head) slices staged
    std::uint64_t rows_per_pass = 1;      ///< logits rows staged per slice
};

/** Computes the cross-loop extent for the given workload dimensions.
 *  C-Gran covers the same per-pass work as R-Gran — the column blocking
 *  subdivides each pass internally (see cross_col_blocks). */
CrossLoopExtent cross_loop_extent(const CrossLoop& cross,
                                  std::uint64_t batch, std::uint64_t heads,
                                  std::uint64_t query_rows);

/** Effective column-block width: min(C, kv_len) for C-Gran, the full
 *  key/value length otherwise. */
std::uint64_t cross_col_tile(const CrossLoop& cross, std::uint64_t kv_len);

/** Column blocks each cross-loop pass streams through: 1 for M/B/H/R,
 *  ceil(kv_len / C) for C-Gran. */
std::uint64_t cross_col_blocks(const CrossLoop& cross,
                               std::uint64_t kv_len);

/**
 * Register-tier bytes one column-blocked pass keeps below SL: the
 * (rows x cols) running logits tile, the (rows x head_dim) output
 * accumulator, and the two running softmax statistics (max, sum) per
 * row. This is the staging level online softmax adds below the SG/SL
 * hierarchy — the intermediate tensor never touches the SG at C-Gran.
 */
std::uint64_t register_tier_bytes(std::uint64_t rows, std::uint64_t cols,
                                  std::uint64_t head_dim,
                                  std::uint32_t bytes_per_element);

} // namespace flat

#endif // FLAT_DATAFLOW_GRANULARITY_H

/**
 * @file
 * Execution granularity of the FLAT-tile / L3 staging level (§4.2.2).
 *
 * The cross-operator (outer) loop iterates over units of work whose
 * intermediate-tensor slice is staged on-chip. From coarsest to finest:
 * Batch-Multi-Head (the whole tensor), Batch, Head, and Row (R rows of
 * one head's logits — the finest unit that keeps the softmax row
 * reduction intact).
 */
#ifndef FLAT_DATAFLOW_GRANULARITY_H
#define FLAT_DATAFLOW_GRANULARITY_H

#include <cstdint>
#include <string>

namespace flat {

/** FLAT-tile granularity (M/B/H/R-Gran in the paper). */
enum class Granularity {
    kMulti, ///< M-Gran: whole batched multi-head tensor in one pass
    kBatch, ///< B-Gran: one batch sample (all heads) per pass
    kHead,  ///< H-Gran: one head per pass
    kRow,   ///< R-Gran: R logits rows of one head per pass
};

std::string to_string(Granularity granularity);

/** Cross-loop (outer loop) configuration of the fused operator. */
struct CrossLoop {
    Granularity granularity = Granularity::kMulti;

    /** Row-tile size R; meaningful only for R-Gran (must divide work in
     *  ceil fashion, any positive value allowed). */
    std::uint64_t rows = 0;

    /** Human-readable tag, e.g. "M", "B", "H", "R64". */
    std::string tag() const;

    /** Throws flat::Error if R-Gran lacks a positive row count. */
    void validate() const;
};

/**
 * Work covered by a single cross-loop pass and the number of passes for
 * a workload of @p batch samples, @p heads heads and @p query_rows
 * logits rows per head.
 */
struct CrossLoopExtent {
    std::uint64_t passes = 1;             ///< cross-loop trip count
    std::uint64_t instances_per_pass = 1; ///< (batch x head) slices staged
    std::uint64_t rows_per_pass = 1;      ///< logits rows staged per slice
};

/** Computes the cross-loop extent for the given workload dimensions. */
CrossLoopExtent cross_loop_extent(const CrossLoop& cross,
                                  std::uint64_t batch, std::uint64_t heads,
                                  std::uint64_t query_rows);

} // namespace flat

#endif // FLAT_DATAFLOW_GRANULARITY_H

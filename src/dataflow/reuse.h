/**
 * @file
 * Loop-nest reuse analysis: how many times each operand tile must be
 * (re-)fetched into the SG for a tiled GEMM, as a function of the tile
 * loop order. This is the classic "a tile stays resident across the
 * contiguous innermost loops that do not index it" model used by
 * Timeloop-class analytical frameworks.
 */
#ifndef FLAT_DATAFLOW_REUSE_H
#define FLAT_DATAFLOW_REUSE_H

#include <cstdint>

#include "dataflow/tiling.h"

namespace flat {

/** Tile-fetch counts for the three GEMM tensors of one instance. */
struct ReuseCounts {
    /** Number of A (resp. B) tile fetches from the level above. */
    std::uint64_t a_fetches = 0;
    std::uint64_t b_fetches = 0;

    /** Number of C tile write-backs. */
    std::uint64_t c_writes = 0;

    /** Number of C tile re-reads (partial-sum spills). Zero when the
     *  reduction loop is innermost. */
    std::uint64_t c_reads = 0;

    /** Number of distinct C tiles (= trips_m x trips_n). */
    std::uint64_t c_tiles = 0;
};

/**
 * Computes tile fetch/spill counts for a tiled GEMM.
 *
 * @param order   SG-level tile loop order (outermost first).
 * @param trips_m trip count of the m tile loop.
 * @param trips_k trip count of the k tile loop.
 * @param trips_n trip count of the n tile loop.
 */
ReuseCounts analyze_reuse(LoopOrder order, std::uint64_t trips_m,
                          std::uint64_t trips_k, std::uint64_t trips_n);

/**
 * The loop order minimizing total off-chip traffic for the given tile
 * byte sizes (used by Base-opt style greedy seeds before full DSE).
 */
LoopOrder best_loop_order(std::uint64_t trips_m, std::uint64_t trips_k,
                          std::uint64_t trips_n, std::uint64_t a_tile_bytes,
                          std::uint64_t b_tile_bytes,
                          std::uint64_t c_tile_bytes);

} // namespace flat

#endif // FLAT_DATAFLOW_REUSE_H

#include "dataflow/reuse.h"

#include <array>
#include <limits>

#include "common/status.h"

namespace flat {
namespace {

std::uint64_t
trips_of(Dim dim, std::uint64_t tm, std::uint64_t tk, std::uint64_t tn)
{
    switch (dim) {
      case Dim::kM: return tm;
      case Dim::kK: return tk;
      case Dim::kN: return tn;
    }
    return 1;
}

/** True iff @p dim indexes the tensor described by the two flags. */
bool
indexes(Dim dim, bool uses_m, bool uses_k, bool uses_n)
{
    switch (dim) {
      case Dim::kM: return uses_m;
      case Dim::kK: return uses_k;
      case Dim::kN: return uses_n;
    }
    return false;
}

/**
 * Fetch count = total trips / product of trips of the contiguous
 * innermost loops that do not index the tensor (those iterations reuse
 * the resident tile for free).
 */
std::uint64_t
fetch_count(const Dim dims[3], std::uint64_t tm, std::uint64_t tk,
            std::uint64_t tn, bool uses_m, bool uses_k, bool uses_n)
{
    std::uint64_t fetches = 1;
    for (int i = 0; i < 3; ++i) {
        fetches *= trips_of(dims[i], tm, tk, tn);
    }
    // Contiguous innermost loops that do not index the tensor reuse the
    // resident tile for free. A degenerate loop (one trip) never forces
    // a refetch, so it does not break the contiguity either.
    std::uint64_t free_reuse = 1;
    for (int i = 2; i >= 0; --i) {
        const std::uint64_t trips = trips_of(dims[i], tm, tk, tn);
        if (trips > 1 && indexes(dims[i], uses_m, uses_k, uses_n)) {
            break;
        }
        free_reuse *= trips;
    }
    return fetches / free_reuse;
}

} // namespace

ReuseCounts
analyze_reuse(LoopOrder order, std::uint64_t trips_m, std::uint64_t trips_k,
              std::uint64_t trips_n)
{
    FLAT_CHECK(trips_m > 0 && trips_k > 0 && trips_n > 0,
               "trip counts must be positive");

    Dim dims[3];
    loop_order_dims(order, dims);

    ReuseCounts counts;
    counts.a_fetches =
        fetch_count(dims, trips_m, trips_k, trips_n, true, true, false);
    counts.b_fetches =
        fetch_count(dims, trips_m, trips_k, trips_n, false, true, true);
    counts.c_tiles = trips_m * trips_n;

    const std::uint64_t c_fetches =
        fetch_count(dims, trips_m, trips_k, trips_n, true, false, true);
    counts.c_writes = c_fetches;
    // The first residency period of each distinct C tile starts from
    // zero-initialized accumulators, so only later periods re-read.
    counts.c_reads = c_fetches - counts.c_tiles;
    return counts;
}

LoopOrder
best_loop_order(std::uint64_t trips_m, std::uint64_t trips_k,
                std::uint64_t trips_n, std::uint64_t a_tile_bytes,
                std::uint64_t b_tile_bytes, std::uint64_t c_tile_bytes)
{
    LoopOrder best = LoopOrder::kMKN;
    auto traffic = [&](LoopOrder order) {
        const ReuseCounts c = analyze_reuse(order, trips_m, trips_k,
                                            trips_n);
        return static_cast<double>(c.a_fetches) * a_tile_bytes +
               static_cast<double>(c.b_fetches) * b_tile_bytes +
               static_cast<double>(c.c_writes + c.c_reads) * c_tile_bytes;
    };
    double best_traffic = std::numeric_limits<double>::infinity();
    for (LoopOrder order : kAllLoopOrders) {
        const double t = traffic(order);
        if (t < best_traffic) {
            best_traffic = t;
            best = order;
        }
    }
    return best;
}

} // namespace flat

#include "dataflow/granularity.h"

#include "common/math_util.h"
#include "common/status.h"
#include "common/string_util.h"

namespace flat {

std::string
to_string(Granularity granularity)
{
    switch (granularity) {
      case Granularity::kMulti: return "M";
      case Granularity::kBatch: return "B";
      case Granularity::kHead: return "H";
      case Granularity::kRow: return "R";
      case Granularity::kColumn: return "C";
    }
    return "?";
}

std::string
CrossLoop::tag() const
{
    if (granularity == Granularity::kRow) {
        return strprintf("R%llu", static_cast<unsigned long long>(rows));
    }
    if (granularity == Granularity::kColumn) {
        return strprintf("R%lluC%llu", static_cast<unsigned long long>(rows),
                         static_cast<unsigned long long>(cols));
    }
    return to_string(granularity);
}

void
CrossLoop::validate() const
{
    if (granularity == Granularity::kRow) {
        FLAT_CHECK(rows > 0, "R-Gran requires a positive row-tile size");
    }
    if (granularity == Granularity::kColumn) {
        FLAT_CHECK(rows > 0 && cols > 0,
                   "C-Gran requires positive row- and column-tile sizes");
    }
}

CrossLoopExtent
cross_loop_extent(const CrossLoop& cross, std::uint64_t batch,
                  std::uint64_t heads, std::uint64_t query_rows)
{
    cross.validate();
    FLAT_CHECK(batch > 0 && heads > 0 && query_rows > 0,
               "cross-loop extent needs positive dimensions");

    CrossLoopExtent extent;
    switch (cross.granularity) {
      case Granularity::kMulti:
        extent.passes = 1;
        extent.instances_per_pass = batch * heads;
        extent.rows_per_pass = query_rows;
        break;
      case Granularity::kBatch:
        extent.passes = batch;
        extent.instances_per_pass = heads;
        extent.rows_per_pass = query_rows;
        break;
      case Granularity::kHead:
        extent.passes = batch * heads;
        extent.instances_per_pass = 1;
        extent.rows_per_pass = query_rows;
        break;
      case Granularity::kRow:
      case Granularity::kColumn:
        extent.passes = batch * heads * ceil_div(query_rows, cross.rows);
        extent.instances_per_pass = 1;
        extent.rows_per_pass = std::min(cross.rows, query_rows);
        break;
    }
    return extent;
}

std::uint64_t
cross_col_tile(const CrossLoop& cross, std::uint64_t kv_len)
{
    if (cross.granularity != Granularity::kColumn) return kv_len;
    return std::min(cross.cols, kv_len);
}

std::uint64_t
cross_col_blocks(const CrossLoop& cross, std::uint64_t kv_len)
{
    if (cross.granularity != Granularity::kColumn) return 1;
    FLAT_CHECK(kv_len > 0, "column blocking needs a positive kv length");
    return ceil_div(kv_len, std::min(cross.cols, kv_len));
}

std::uint64_t
register_tier_bytes(std::uint64_t rows, std::uint64_t cols,
                    std::uint64_t head_dim, std::uint32_t bytes_per_element)
{
    // Running (rows x cols) logits block, (rows x head_dim) output
    // accumulator, and two softmax statistics (running max, running sum)
    // per row.
    const std::uint64_t elems = rows * cols + rows * head_dim + 2 * rows;
    return elems * bytes_per_element;
}

} // namespace flat

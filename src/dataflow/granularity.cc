#include "dataflow/granularity.h"

#include "common/math_util.h"
#include "common/status.h"
#include "common/string_util.h"

namespace flat {

std::string
to_string(Granularity granularity)
{
    switch (granularity) {
      case Granularity::kMulti: return "M";
      case Granularity::kBatch: return "B";
      case Granularity::kHead: return "H";
      case Granularity::kRow: return "R";
    }
    return "?";
}

std::string
CrossLoop::tag() const
{
    if (granularity == Granularity::kRow) {
        return strprintf("R%llu", static_cast<unsigned long long>(rows));
    }
    return to_string(granularity);
}

void
CrossLoop::validate() const
{
    if (granularity == Granularity::kRow) {
        FLAT_CHECK(rows > 0, "R-Gran requires a positive row-tile size");
    }
}

CrossLoopExtent
cross_loop_extent(const CrossLoop& cross, std::uint64_t batch,
                  std::uint64_t heads, std::uint64_t query_rows)
{
    cross.validate();
    FLAT_CHECK(batch > 0 && heads > 0 && query_rows > 0,
               "cross-loop extent needs positive dimensions");

    CrossLoopExtent extent;
    switch (cross.granularity) {
      case Granularity::kMulti:
        extent.passes = 1;
        extent.instances_per_pass = batch * heads;
        extent.rows_per_pass = query_rows;
        break;
      case Granularity::kBatch:
        extent.passes = batch;
        extent.instances_per_pass = heads;
        extent.rows_per_pass = query_rows;
        break;
      case Granularity::kHead:
        extent.passes = batch * heads;
        extent.instances_per_pass = 1;
        extent.rows_per_pass = query_rows;
        break;
      case Granularity::kRow:
        extent.passes = batch * heads * ceil_div(query_rows, cross.rows);
        extent.instances_per_pass = 1;
        extent.rows_per_pass = std::min(cross.rows, query_rows);
        break;
    }
    return extent;
}

} // namespace flat

/**
 * @file
 * Intra-operator tiling: L2 tile shapes, SG-level tile loop orders and
 * PE-array stationarity choices (§3.1, §4.2.2 "L2, L1 Tiling").
 */
#ifndef FLAT_DATAFLOW_TILING_H
#define FLAT_DATAFLOW_TILING_H

#include <cstdint>
#include <string>

#include "workload/gemm_shape.h"

namespace flat {

/** Which operand is pinned in the PE array's local scratchpads. */
enum class Stationarity {
    kWeightStationary, ///< B operand resident in PEs
    kInputStationary,  ///< A operand resident in PEs
    kOutputStationary, ///< C accumulates in PEs
};

std::string to_string(Stationarity stationarity);

/** Order of the (m, k, n) tile loops at the SG level, outer to inner. */
enum class LoopOrder {
    kMKN,
    kMNK,
    kKMN,
    kKNM,
    kNMK,
    kNKM,
};

std::string to_string(LoopOrder order);

/** All six orders, for DSE sweeps. */
constexpr LoopOrder kAllLoopOrders[] = {LoopOrder::kMKN, LoopOrder::kMNK,
                                        LoopOrder::kKMN, LoopOrder::kKNM,
                                        LoopOrder::kNMK, LoopOrder::kNKM};

/** Dimension tags of a GEMM loop nest. */
enum class Dim : std::uint8_t { kM = 0, kK = 1, kN = 2 };

/** The three dims of @p order from outermost to innermost. */
void loop_order_dims(LoopOrder order, Dim out[3]);

/** L2 tile shape of a GEMM: the slice streamed through the PE array. */
struct L2Tile {
    std::uint64_t m = 0;
    std::uint64_t k = 0;
    std::uint64_t n = 0;

    /** Clamp the tile to the operator's actual dimensions. */
    L2Tile clamped(const GemmShape& shape) const;

    /** Bytes of one A/B/C tile at @p bytes_per_element. */
    std::uint64_t a_bytes(std::uint32_t bytes_per_element) const;
    std::uint64_t b_bytes(std::uint32_t bytes_per_element) const;
    std::uint64_t c_bytes(std::uint32_t bytes_per_element) const;

    /** Trip counts of the three tile loops for @p shape. */
    std::uint64_t trips_m(const GemmShape& shape) const;
    std::uint64_t trips_k(const GemmShape& shape) const;
    std::uint64_t trips_n(const GemmShape& shape) const;

    /** Total tile iterations per GEMM instance. */
    std::uint64_t total_trips(const GemmShape& shape) const;

    std::string tag() const;

    /** Throws flat::Error on zero dimensions. */
    void validate() const;
};

} // namespace flat

#endif // FLAT_DATAFLOW_TILING_H

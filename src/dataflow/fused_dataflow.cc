#include "dataflow/fused_dataflow.h"

#include <cstdio>

#include "common/status.h"
#include "common/string_util.h"

namespace flat {

AttentionDims
AttentionDims::from_workload(const Workload& workload)
{
    AttentionDims dims;
    dims.batch = workload.batch;
    dims.heads = workload.model.num_heads;
    dims.q_len = workload.seq_len;
    dims.kv_len = workload.kv_seq_len;
    dims.head_dim = workload.model.head_dim();
    dims.kv_heads = workload.model.kv_heads();
    dims.decode = workload.decode;
    dims.validate();
    return dims;
}

void
AttentionDims::validate() const
{
    FLAT_CHECK(batch > 0 && heads > 0 && q_len > 0 && kv_len > 0 &&
                   head_dim > 0,
               "attention dims must be positive");
    // Only <= here: head-sharding across devices can leave per-device
    // counts that no longer divide evenly (kv_frac stays a plain
    // traffic ratio). ModelConfig::validate enforces divisibility at
    // the model level.
    FLAT_CHECK(kv_heads <= heads,
               "KV heads (" << kv_heads
                            << ") cannot exceed the query heads ("
                            << heads << ")");
    FLAT_CHECK(!decode || q_len == 1,
               "decode steps process one query token (q_len == "
                   << q_len << ")");
}

std::uint32_t
FusedStageFlags::encode(const FusedStageFlags& flags)
{
    return (flags.query ? 1u : 0u) | (flags.key ? 2u : 0u) |
           (flags.value ? 4u : 0u) | (flags.output ? 8u : 0u) |
           (flags.intermediate ? 16u : 0u);
}

FusedStageFlags
FusedStageFlags::decode(std::uint32_t code)
{
    FLAT_CHECK(code < 32, "stage-flag code out of range: " << code);
    FusedStageFlags flags;
    flags.query = (code & 1u) != 0;
    flags.key = (code & 2u) != 0;
    flags.value = (code & 4u) != 0;
    flags.output = (code & 8u) != 0;
    flags.intermediate = (code & 16u) != 0;
    return flags;
}

std::string
FusedStageFlags::tag() const
{
    std::string out;
    out += query ? 'Q' : '-';
    out += key ? 'K' : '-';
    out += value ? 'V' : '-';
    out += output ? 'O' : '-';
    out += intermediate ? 'I' : '-';
    return out;
}

std::string
FusedDataflow::tag() const
{
    // Byte-identical to
    //   cross.tag() + "/" + l2_logit.tag() + "/" + l2_attend.tag() +
    //   "/" + stage.tag()
    // but built in one pass: the DSE tie-break constructs this tag for
    // every candidate that matches the incumbent's objective value, so
    // the string-concatenation temporaries were a measurable slice of
    // the per-point cost.
    char buf[128];
    int len;
    if (cross.granularity == Granularity::kColumn) {
        len = std::snprintf(
            buf, sizeof(buf),
            "R%lluC%llu/%llux%llux%llu/%llux%llux%llu/",
            static_cast<unsigned long long>(cross.rows),
            static_cast<unsigned long long>(cross.cols),
            static_cast<unsigned long long>(l2_logit.m),
            static_cast<unsigned long long>(l2_logit.k),
            static_cast<unsigned long long>(l2_logit.n),
            static_cast<unsigned long long>(l2_attend.m),
            static_cast<unsigned long long>(l2_attend.k),
            static_cast<unsigned long long>(l2_attend.n));
    } else if (cross.granularity == Granularity::kRow) {
        len = std::snprintf(
            buf, sizeof(buf), "R%llu/%llux%llux%llu/%llux%llux%llu/",
            static_cast<unsigned long long>(cross.rows),
            static_cast<unsigned long long>(l2_logit.m),
            static_cast<unsigned long long>(l2_logit.k),
            static_cast<unsigned long long>(l2_logit.n),
            static_cast<unsigned long long>(l2_attend.m),
            static_cast<unsigned long long>(l2_attend.k),
            static_cast<unsigned long long>(l2_attend.n));
    } else {
        len = std::snprintf(
            buf, sizeof(buf), "%s/%llux%llux%llu/%llux%llux%llu/",
            to_string(cross.granularity).c_str(),
            static_cast<unsigned long long>(l2_logit.m),
            static_cast<unsigned long long>(l2_logit.k),
            static_cast<unsigned long long>(l2_logit.n),
            static_cast<unsigned long long>(l2_attend.m),
            static_cast<unsigned long long>(l2_attend.k),
            static_cast<unsigned long long>(l2_attend.n));
    }
    FLAT_ASSERT(len > 0 &&
                    static_cast<std::size_t>(len) + 5 < sizeof(buf),
                "dataflow tag overflows its buffer");
    char* p = buf + len;
    *p++ = stage.query ? 'Q' : '-';
    *p++ = stage.key ? 'K' : '-';
    *p++ = stage.value ? 'V' : '-';
    *p++ = stage.output ? 'O' : '-';
    *p++ = stage.intermediate ? 'I' : '-';
    return std::string(buf, static_cast<std::size_t>(p - buf));
}

void
FusedDataflow::validate() const
{
    cross.validate();
    l2_logit.validate();
    l2_attend.validate();
}

std::uint64_t
fused_live_footprint(const FusedDataflow& dataflow,
                     const AttentionDims& dims,
                     std::uint32_t bytes_per_element)
{
    dataflow.validate();
    dims.validate();

    const CrossLoopExtent extent = cross_loop_extent(
        dataflow.cross, dims.batch, dims.heads, dims.q_len);
    const std::uint64_t inst = extent.instances_per_pass;
    const std::uint64_t rows = extent.rows_per_pass;
    const std::uint64_t dk = dims.head_dim;
    const std::uint64_t kv = dims.kv_len;
    const std::uint64_t bpe = bytes_per_element;

    // Clamp the per-stage L2 tiles to the actual stage GEMM shapes so
    // oversized tiles do not inflate the footprint of disabled tensors.
    // At C-Gran each pass streams cols_eff key-columns at a time, so the
    // per-stage shapes shrink to the column block.
    const std::uint64_t cols_eff = cross_col_tile(dataflow.cross, kv);
    GemmShape logit_shape;
    logit_shape.m = rows;
    logit_shape.k = dk;
    logit_shape.n = cols_eff;
    GemmShape attend_shape;
    attend_shape.m = rows;
    attend_shape.k = cols_eff;
    attend_shape.n = dk;
    const L2Tile logit_tile = dataflow.l2_logit.clamped(logit_shape);
    const L2Tile attend_tile = dataflow.l2_attend.clamped(attend_shape);

    std::uint64_t bytes = 0;

    // Q rows: input of L, streamed from DRAM -> double buffered.
    bytes += dataflow.stage.query ? 2 * rows * dk * inst * bpe
                                  : 2 * logit_tile.a_bytes(bpe);
    // K: second input of L.
    bytes += dataflow.stage.key ? 2 * kv * dk * inst * bpe
                                : 2 * logit_tile.b_bytes(bpe);
    // V: second input of A.
    bytes += dataflow.stage.value ? 2 * kv * dk * inst * bpe
                                  : 2 * attend_tile.b_bytes(bpe);
    // Output of A, streamed back to DRAM.
    bytes += dataflow.stage.output ? 2 * rows * dk * inst * bpe
                                   : 2 * attend_tile.c_bytes(bpe);
    // Intermediate logits: single-buffered when staged (never leaves the
    // chip); when disabled it round-trips via DRAM at L2-tile size for
    // both the producer (L output) and the consumer (A input). At C-Gran
    // the running block lives in the register tier below SL, not the SG.
    const bool column = dataflow.cross.granularity == Granularity::kColumn;
    bytes += dataflow.stage.intermediate
                 ? (column ? 0 : rows * kv * inst * bpe)
                 : 2 * (logit_tile.c_bytes(bpe) +
                        attend_tile.a_bytes(bpe));
    return bytes;
}

std::uint64_t
table2_footprint_elems(Granularity granularity, const AttentionDims& dims,
                       std::uint64_t r_rows)
{
    dims.validate();
    const std::uint64_t b = dims.batch;
    const std::uint64_t h = dims.heads;
    const std::uint64_t n = dims.q_len;
    const std::uint64_t kv = dims.kv_len;
    const std::uint64_t dk = dims.head_dim;
    const std::uint64_t d = h * dk;

    switch (granularity) {
      case Granularity::kMulti:
        // 8*B*D*N + B*H*N^2 (with N == kv for self-attention).
        return 4 * b * d * n + 4 * b * d * kv + b * h * n * kv;
      case Granularity::kBatch:
        return 4 * d * n + 4 * d * kv + h * n * kv;
      case Granularity::kHead:
        return 4 * n * dk + 4 * kv * dk + n * kv;
      case Granularity::kRow:
        FLAT_CHECK(r_rows > 0, "Table 2 R-Gran needs a row count");
        return 4 * r_rows * dk + 4 * kv * dk + r_rows * kv;
      case Granularity::kColumn:
        // Table 2 predates online softmax; the column-blocked footprint
        // drops the intermediate term entirely (register-tier resident).
        FLAT_CHECK(r_rows > 0, "Table 2 C-Gran needs a row count");
        return 4 * r_rows * dk + 4 * kv * dk;
    }
    FLAT_ASSERT(false, "unreachable granularity");
    return 0;
}

} // namespace flat

#include "dataflow/operator_dataflow.h"

#include "common/status.h"
#include "common/string_util.h"

namespace flat {

std::string
L3StageFlags::tag() const
{
    std::string out;
    out += a ? 'A' : '-';
    out += b ? 'B' : '-';
    out += c ? 'C' : '-';
    return out;
}

std::string
OperatorDataflow::tag() const
{
    std::string out = l2.tag();
    out += "/" + to_string(order);
    out += "/" + to_string(stationarity);
    if (l3.any()) {
        out += "/L3:" + cross.tag() + ":" + l3.tag();
    }
    return out;
}

void
OperatorDataflow::validate() const
{
    l2.validate();
    cross.validate();
}

std::uint64_t
operator_live_footprint(const OperatorDataflow& dataflow,
                        const GemmShape& shape,
                        std::uint32_t bytes_per_element)
{
    dataflow.validate();
    shape.validate();

    const L2Tile tile = dataflow.l2.clamped(shape);
    const CrossLoopExtent extent =
        cross_loop_extent(dataflow.cross, 1, shape.instances, shape.m);
    // For a single operator the "instances per pass" is how many GEMM
    // instances are staged together at the chosen granularity.
    const std::uint64_t staged_instances = extent.instances_per_pass;

    std::uint64_t bytes = 0;
    // Staged tensors hold the whole per-pass slice, double buffered.
    // Weight operands are shared across instances.
    auto staged_size = [&](std::uint64_t per_instance_elems,
                           OperandKind kind) {
        const std::uint64_t inst =
            (kind == OperandKind::kWeight) ? 1 : staged_instances;
        return 2 * per_instance_elems * inst * bytes_per_element;
    };

    if (dataflow.l3.a) {
        const std::uint64_t rows = extent.rows_per_pass;
        bytes += staged_size(rows * shape.k, shape.a_kind);
    } else {
        bytes += 2 * tile.a_bytes(bytes_per_element);
    }
    if (dataflow.l3.b) {
        bytes += staged_size(shape.b_elems(), shape.b_kind);
    } else {
        bytes += 2 * tile.b_bytes(bytes_per_element);
    }
    if (dataflow.l3.c) {
        const std::uint64_t rows = extent.rows_per_pass;
        bytes += staged_size(rows * shape.n, OperandKind::kActivation);
    } else {
        bytes += 2 * tile.c_bytes(bytes_per_element);
    }
    return bytes;
}

} // namespace flat

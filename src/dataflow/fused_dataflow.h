/**
 * @file
 * The FLAT fused L-A dataflow configuration (§4): a shared cross-loop at
 * M/B/H/R granularity, per-stage intra-operator tiling, and per-tensor
 * FLAT-tile enable flags (the paper's 2^5 staging choices).
 */
#ifndef FLAT_DATAFLOW_FUSED_DATAFLOW_H
#define FLAT_DATAFLOW_FUSED_DATAFLOW_H

#include <cstdint>
#include <string>

#include "dataflow/granularity.h"
#include "dataflow/tiling.h"
#include "workload/attention.h"

namespace flat {

/** Attention dimensions the fused operator works over. */
struct AttentionDims {
    std::uint64_t batch = 1;    ///< B
    std::uint64_t heads = 1;    ///< H
    std::uint64_t q_len = 1;    ///< query sequence length N
    std::uint64_t kv_len = 1;   ///< key/value sequence length
    std::uint64_t head_dim = 1; ///< dk

    /**
     * K/V head count for grouped-query attention; 0 means one K/V
     * head per query head (classic MHA). Groups of
     * heads/kv_heads_eff() query heads read the same K/V slices, so
     * K/V bytes (and the KV-cache) shrink by that factor while the
     * MAC count is unchanged.
     */
    std::uint64_t kv_heads = 0;

    /**
     * Autoregressive decode step: one new query token per sequence
     * (q_len == 1) attending over a KV-cache of kv_len tokens.
     */
    bool decode = false;

    /** Effective K/V head count: kv_heads, or heads when 0. */
    std::uint64_t kv_heads_eff() const
    {
        return kv_heads != 0 ? kv_heads : heads;
    }

    /**
     * Fraction of K/V traffic relative to MHA: kv_heads_eff()/heads.
     * Exactly 1.0 for MHA, so scaling by it preserves MHA arithmetic
     * bit-for-bit.
     */
    double kv_frac() const
    {
        return static_cast<double>(kv_heads_eff()) /
               static_cast<double>(heads);
    }

    /** Extracts the dims from an instantiated workload. */
    static AttentionDims from_workload(const Workload& workload);

    void validate() const;
};

/**
 * Per-tensor FLAT-tile staging flags. The five tensors of the fused
 * operator: the two inputs of L (Q rows, K), the second input of A (V),
 * the output of A, and the shared intermediate (logits) tensor.
 */
struct FusedStageFlags {
    bool query = true;
    bool key = true;
    bool value = true;
    bool output = true;
    bool intermediate = true;

    /** All 32 combinations, for exhaustive DSE. */
    static std::uint32_t encode(const FusedStageFlags& flags);
    static FusedStageFlags decode(std::uint32_t code);

    std::string tag() const;
};

/** Complete FLAT dataflow description for the fused L-A operator. */
struct FusedDataflow {
    /** Shared cross-operator (outer) loop. */
    CrossLoop cross;

    /** Intra-operator dataflow of the Logit stage. */
    L2Tile l2_logit;
    LoopOrder order_logit = LoopOrder::kMKN;
    Stationarity stat_logit = Stationarity::kOutputStationary;

    /** Intra-operator dataflow of the Attend stage. */
    L2Tile l2_attend;
    LoopOrder order_attend = LoopOrder::kMKN;
    Stationarity stat_attend = Stationarity::kOutputStationary;

    /** FLAT-tile enable/disable per tensor. */
    FusedStageFlags stage;

    std::string tag() const;

    void validate() const;
};

/**
 * Live SG footprint in bytes of the fused dataflow (Table 2).
 *
 * Staged input/output tensors are double-buffered (they exchange data
 * with off-chip memory); the staged intermediate tensor is not (it never
 * leaves the chip). Non-staged tensors occupy two L2 tiles.
 */
std::uint64_t fused_live_footprint(const FusedDataflow& dataflow,
                                   const AttentionDims& dims,
                                   std::uint32_t bytes_per_element);

/**
 * Closed-form Table 2 footprints in elements, for validation:
 * M: 8BDN + BHN^2, B: 8DN + HN^2, H: 8Ndk + N^2, R: 4Rdk + 4Ndk + RN.
 */
std::uint64_t table2_footprint_elems(Granularity granularity,
                                     const AttentionDims& dims,
                                     std::uint64_t r_rows);

} // namespace flat

#endif // FLAT_DATAFLOW_FUSED_DATAFLOW_H

#include "dataflow/tiling.h"

#include <algorithm>

#include "common/math_util.h"
#include "common/status.h"
#include "common/string_util.h"

namespace flat {

std::string
to_string(Stationarity stationarity)
{
    switch (stationarity) {
      case Stationarity::kWeightStationary: return "WS";
      case Stationarity::kInputStationary: return "IS";
      case Stationarity::kOutputStationary: return "OS";
    }
    return "?";
}

std::string
to_string(LoopOrder order)
{
    switch (order) {
      case LoopOrder::kMKN: return "mkn";
      case LoopOrder::kMNK: return "mnk";
      case LoopOrder::kKMN: return "kmn";
      case LoopOrder::kKNM: return "knm";
      case LoopOrder::kNMK: return "nmk";
      case LoopOrder::kNKM: return "nkm";
    }
    return "?";
}

void
loop_order_dims(LoopOrder order, Dim out[3])
{
    switch (order) {
      case LoopOrder::kMKN:
        out[0] = Dim::kM; out[1] = Dim::kK; out[2] = Dim::kN;
        return;
      case LoopOrder::kMNK:
        out[0] = Dim::kM; out[1] = Dim::kN; out[2] = Dim::kK;
        return;
      case LoopOrder::kKMN:
        out[0] = Dim::kK; out[1] = Dim::kM; out[2] = Dim::kN;
        return;
      case LoopOrder::kKNM:
        out[0] = Dim::kK; out[1] = Dim::kN; out[2] = Dim::kM;
        return;
      case LoopOrder::kNMK:
        out[0] = Dim::kN; out[1] = Dim::kM; out[2] = Dim::kK;
        return;
      case LoopOrder::kNKM:
        out[0] = Dim::kN; out[1] = Dim::kK; out[2] = Dim::kM;
        return;
    }
    FLAT_ASSERT(false, "unreachable loop order");
}

L2Tile
L2Tile::clamped(const GemmShape& shape) const
{
    L2Tile t;
    t.m = std::min<std::uint64_t>(m, shape.m);
    t.k = std::min<std::uint64_t>(k, shape.k);
    t.n = std::min<std::uint64_t>(n, shape.n);
    return t;
}

std::uint64_t
L2Tile::a_bytes(std::uint32_t bytes_per_element) const
{
    return m * k * bytes_per_element;
}

std::uint64_t
L2Tile::b_bytes(std::uint32_t bytes_per_element) const
{
    return k * n * bytes_per_element;
}

std::uint64_t
L2Tile::c_bytes(std::uint32_t bytes_per_element) const
{
    return m * n * bytes_per_element;
}

std::uint64_t
L2Tile::trips_m(const GemmShape& shape) const
{
    return ceil_div(shape.m, m);
}

std::uint64_t
L2Tile::trips_k(const GemmShape& shape) const
{
    return ceil_div(shape.k, k);
}

std::uint64_t
L2Tile::trips_n(const GemmShape& shape) const
{
    return ceil_div(shape.n, n);
}

std::uint64_t
L2Tile::total_trips(const GemmShape& shape) const
{
    return trips_m(shape) * trips_k(shape) * trips_n(shape);
}

std::string
L2Tile::tag() const
{
    return strprintf("%llux%llux%llu", static_cast<unsigned long long>(m),
                     static_cast<unsigned long long>(k),
                     static_cast<unsigned long long>(n));
}

void
L2Tile::validate() const
{
    FLAT_CHECK(m > 0 && k > 0 && n > 0,
               "L2 tile dims must be positive, got " << tag());
}

} // namespace flat

/**
 * @file
 * Operational-intensity and roofline analysis (§2.2, §3.2, Figure 2):
 * why CONV/FC benefit from batching while the activation-activation L/A
 * operators do not, and how staging data on-chip raises the ceiling.
 */
#ifndef FLAT_ANALYSIS_ROOFLINE_H
#define FLAT_ANALYSIS_ROOFLINE_H

#include <cstdint>

#include "arch/accel_config.h"
#include "workload/gemm_shape.h"

namespace flat {

/** One point on the roofline plot. */
struct RooflinePoint {
    double op_intensity = 0.0;       ///< MACs per byte of memory traffic
    double attainable_macs_s = 0.0;  ///< min(peak, intensity * BW)
    bool compute_bound = false;      ///< true if the flat roof applies
};

/**
 * Attainable performance on @p accel for an operator of @p macs_per_byte
 * intensity. @p onchip_staged selects the on-chip bandwidth ceiling
 * (Figure 2(c)) instead of the off-chip one.
 */
RooflinePoint roofline_point(const AccelConfig& accel,
                             double macs_per_byte, bool onchip_staged);

/** MACs/byte of a GEMM whose tensors are each touched once. */
double gemm_op_intensity(const GemmShape& shape,
                         std::uint32_t bytes_per_element);

/**
 * MACs/byte of a CONV layer (weights reused across all output pixels):
 * out = [batch, out_c, hw], filter = [out_c, in_c, k*k].
 */
double conv_op_intensity(std::uint64_t batch, std::uint64_t in_c,
                         std::uint64_t out_c, std::uint64_t hw,
                         std::uint64_t kernel,
                         std::uint32_t bytes_per_element);

/** MACs/byte of an FC layer [batch x in_dim] * [in_dim x out_dim]. */
double fc_op_intensity(std::uint64_t batch, std::uint64_t in_dim,
                       std::uint64_t out_dim,
                       std::uint32_t bytes_per_element);

/**
 * MACs/byte of the multi-head Logit+Attend pair (§2.2):
 * ops O(B N^2 D), accesses O(2BND + BHN^2) each for L and A; the
 * reciprocal intensity is O(2/N + H/D).
 */
double attention_op_intensity(std::uint64_t batch, std::uint64_t heads,
                              std::uint64_t seq_len, std::uint64_t head_dim,
                              std::uint32_t bytes_per_element);

/** On-chip staging requirement of Table 1, in bytes. */
struct StagingRequirement {
    /** One projection operator: input + weight + output. */
    std::uint64_t qkvo_bytes = 0;
    /** The L/A pair: Q + K activations + the H*N^2 logits tensor. */
    std::uint64_t la_bytes = 0;
};

/** Computes Table 1's rows for (N, D, H) at @p bytes_per_element. */
StagingRequirement staging_requirement(std::uint64_t seq_len,
                                       std::uint64_t hidden_dim,
                                       std::uint64_t heads,
                                       std::uint32_t bytes_per_element);

} // namespace flat

#endif // FLAT_ANALYSIS_ROOFLINE_H

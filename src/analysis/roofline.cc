#include "analysis/roofline.h"

#include <algorithm>

#include "common/status.h"

namespace flat {

RooflinePoint
roofline_point(const AccelConfig& accel, double macs_per_byte,
               bool onchip_staged)
{
    FLAT_CHECK(macs_per_byte > 0.0, "intensity must be positive");
    const double bw = onchip_staged ? accel.onchip_bw : accel.offchip_bw;
    RooflinePoint point;
    point.op_intensity = macs_per_byte;
    const double bw_bound = macs_per_byte * bw;
    point.attainable_macs_s = std::min(accel.peak_macs_per_sec(), bw_bound);
    point.compute_bound = bw_bound >= accel.peak_macs_per_sec();
    return point;
}

double
gemm_op_intensity(const GemmShape& shape, std::uint32_t bytes_per_element)
{
    return shape.operational_intensity() / bytes_per_element;
}

double
conv_op_intensity(std::uint64_t batch, std::uint64_t in_c,
                  std::uint64_t out_c, std::uint64_t hw,
                  std::uint64_t kernel, std::uint32_t bytes_per_element)
{
    const double macs = static_cast<double>(batch) * out_c * hw * in_c *
                        kernel * kernel;
    const double input = static_cast<double>(batch) * in_c * hw;
    const double weights =
        static_cast<double>(out_c) * in_c * kernel * kernel;
    const double output = static_cast<double>(batch) * out_c * hw;
    return macs / ((input + weights + output) * bytes_per_element);
}

double
fc_op_intensity(std::uint64_t batch, std::uint64_t in_dim,
                std::uint64_t out_dim, std::uint32_t bytes_per_element)
{
    GemmShape shape;
    shape.m = batch;
    shape.k = in_dim;
    shape.n = out_dim;
    shape.a_kind = OperandKind::kActivation;
    shape.b_kind = OperandKind::kWeight;
    return gemm_op_intensity(shape, bytes_per_element);
}

double
attention_op_intensity(std::uint64_t batch, std::uint64_t heads,
                       std::uint64_t seq_len, std::uint64_t head_dim,
                       std::uint32_t bytes_per_element)
{
    const double d = static_cast<double>(heads) * head_dim;
    const double n = static_cast<double>(seq_len);
    const double b = static_cast<double>(batch);
    // L and A together: 2 * B*N^2*D MACs; accesses: Q, K, V, output
    // (each B*N*D) plus two passes over the B*H*N^2 intermediate.
    const double macs = 2.0 * b * n * n * d;
    const double accesses =
        4.0 * b * n * d + 2.0 * b * heads * n * n;
    return macs / (accesses * bytes_per_element);
}

StagingRequirement
staging_requirement(std::uint64_t seq_len, std::uint64_t hidden_dim,
                    std::uint64_t heads, std::uint32_t bytes_per_element)
{
    StagingRequirement req;
    const std::uint64_t nd = seq_len * hidden_dim;
    // One projection: [N,D] input + [D,D] weight + [N,D] output.
    req.qkvo_bytes =
        (2 * nd + hidden_dim * hidden_dim) * bytes_per_element;
    // L/A pair: Q and K activations plus the multi-head logits tensor.
    req.la_bytes = (2 * nd + heads * seq_len * seq_len) *
                   bytes_per_element;
    return req;
}

} // namespace flat

/**
 * @file
 * Analytic-mapper speedup harness. Three measurements:
 *
 *   1. exhaustive full-space search_attention throughput (points/s) —
 *      the sweep evaluates every (style, cross, stationarity, tile,
 *      flag, order) point of the candidate space with pruning OFF, the
 *      same fixed-work-unit convention dse_throughput uses, so the
 *      headline ratio measures the full enumeration the mapper
 *      replaces. A second exhaustive leg with the incumbent
 *      lower-bound pruning ON (the sweep as deployed) is reported
 *      alongside so the pruned-baseline ratio is visible too;
 *   2. the analytic mapper (SearchMode::kAnalytic) on the SAME space:
 *      closed-form tile seeds per slice, bounded local refinement
 *      through the exact timeline cost. Every leg accounts for the
 *      identical space (evaluated + pruned match), so points/s is a
 *      direct wall-clock speedup on a fixed work unit;
 *   3. winner quality: the analytic pick's objective on each sweep
 *      dims as a ratio of the exhaustive optimum, plus exact-parity
 *      counts over the 12-golden catalog via
 *      SearchMode::kAnalyticVerified.
 *
 * The sweep uses long-sequence, memory-bound shapes (the paper's
 * regime of interest). There the compute-cycle lower bound is loose,
 * exhaustive pruning is weak, and the sweep really does pay for most
 * of the space — exactly the cost the analytic mapper removes.
 *
 * Timing is best-sustained like dse_throughput: every (repeat, dims)
 * search is timed on its own and each dims keeps its minimum.
 *
 * Emits BENCH_mapper.json (tools/bench_compare.py gates the headline
 * analytic.points_per_sec; `ctest -L perf` runs a tiny smoke).
 *
 * Usage: mapper_speedup [--threads N] [--repeats R] [--quick] [--out F]
 */
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "common/thread_pool.h"
#include "core/goldens.h"
#include "costmodel/eval_cache.h"
#include "dse/search.h"
#include "workload/model_config.h"

using namespace flat;
using namespace flat::bench;

namespace {

struct SearchLeg {
    double seconds = 0.0;
    std::uint64_t points = 0;    ///< evaluated + pruned (space size)
    std::uint64_t evaluated = 0; ///< cost-model evaluations actually run
    std::vector<double> best_values; ///< per-dims winning objective
    std::vector<std::string> best_tags;

    double
    points_per_sec() const
    {
        return seconds > 0.0 ? static_cast<double>(points) / seconds
                             : 0.0;
    }
};

/** One leg over the sweep; per-dims minimum across repeats. */
SearchLeg
run_leg(const AccelConfig& accel,
        const std::vector<AttentionDims>& sweep,
        const AttentionSearchOptions& options, unsigned repeats)
{
    SearchLeg leg;
    std::vector<double> best(sweep.size(),
                             std::numeric_limits<double>::infinity());
    leg.best_values.resize(sweep.size());
    leg.best_tags.resize(sweep.size());
    std::vector<std::uint64_t> points(sweep.size(), 0);
    std::vector<std::uint64_t> evaluated(sweep.size(), 0);
    for (unsigned r = 0; r < repeats; ++r) {
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            const ScopedTimer timer;
            const AttentionSearchResult result =
                search_attention(accel, sweep[i], options);
            best[i] = std::min(best[i], timer.seconds());
            points[i] = result.evaluated + result.pruned;
            evaluated[i] = result.evaluated;
            leg.best_values[i] =
                result.best.objective_value(options.objective);
            leg.best_tags[i] = result.best.dataflow.tag();
        }
    }
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        leg.seconds += best[i];
        leg.points += points[i];
        leg.evaluated += evaluated[i];
    }
    return leg;
}

void
write_leg(JsonWriter& json, const char* name, const SearchLeg& leg)
{
    json.key(name);
    json.begin_object();
    json.field("seconds", leg.seconds);
    json.field("points", leg.points);
    json.field("evaluated", leg.evaluated);
    json.field("points_per_sec", leg.points_per_sec());
    json.end_object();
}

} // namespace

int
main(int argc, char** argv)
{
    banner("Analytic mapper — full-space speedup + golden parity",
           "points/s of the exhaustive sweep vs the analytic tile "
           "mapper on identical spaces, winner-quality audit");

    unsigned repeats = 3;
    bool quick = false;
    std::string out_path = "BENCH_mapper.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
            const long parsed = std::atol(argv[++i]);
            if (parsed > 0) {
                repeats = static_cast<unsigned>(parsed);
            }
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        }
    }

    // Memory-bound, full-space workload: every registered execution
    // style, long sequences, batch 8 (the paper's serving shapes).
    const AccelConfig accel = edge_accel();
    const ModelConfig bert = bert_base();
    std::vector<AttentionDims> sweep;
    for (const std::uint64_t seq : {1024ull, 2048ull}) {
        sweep.push_back(AttentionDims::from_workload(
            make_workload(bert, /*batch=*/8, seq)));
    }

    AttentionSearchOptions options;
    options.quick = quick;
    options.fused = true;
    options.styles = {"all"};
    options.prune = true;
    options.threads = cli_threads(argc, argv);
    const unsigned threads = resolve_threads(options.threads);

    std::printf("workload: %zu dims x %u repeats, threads=%u, "
                "styles=all, %s menus\n\n",
                sweep.size(), repeats, threads,
                quick ? "quick" : "full");

    // Every leg runs cache-cold per mode so none inherits another's
    // menus/cost tables: the eval cache is process-wide.
    options.mode = SearchMode::kExhaustive;
    options.prune = false; // full candidate space, every point priced
    EvalCache::instance().clear();
    const SearchLeg exhaustive =
        run_leg(accel, sweep, options, repeats);
    print_search_stats("exhaustive (full)  ", exhaustive.evaluated,
                       exhaustive.points - exhaustive.evaluated,
                       exhaustive.seconds);

    options.prune = true; // the sweep as deployed (incumbent pruning)
    EvalCache::instance().clear();
    const SearchLeg pruned = run_leg(accel, sweep, options, repeats);
    print_search_stats("exhaustive (pruned)", pruned.evaluated,
                       pruned.points - pruned.evaluated,
                       pruned.seconds);

    options.mode = SearchMode::kAnalytic;
    EvalCache::instance().clear();
    const SearchLeg analytic = run_leg(accel, sweep, options, repeats);
    print_search_stats("analytic           ", analytic.evaluated,
                       analytic.points - analytic.evaluated,
                       analytic.seconds);

    const double speedup =
        exhaustive.points_per_sec() > 0.0
            ? analytic.points_per_sec() / exhaustive.points_per_sec()
            : 0.0;
    const double speedup_pruned =
        pruned.points_per_sec() > 0.0
            ? analytic.points_per_sec() / pruned.points_per_sec()
            : 0.0;
    std::printf("\nanalytic vs exhaustive points/s: %s full sweep, "
                "%s pruned sweep (identical spaces: %s)\n",
                fmt_x(speedup).c_str(), fmt_x(speedup_pruned).c_str(),
                exhaustive.points == analytic.points &&
                        pruned.points == analytic.points
                    ? "yes"
                    : "NO");

    // Winner quality on the sweep: the analytic pick's objective as a
    // ratio of the exhaustive optimum (1.0 = same quality).
    double worst_ratio = 1.0;
    std::size_t equal_winners = 0;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        if (exhaustive.best_values[i] > 0.0) {
            worst_ratio = std::max(worst_ratio,
                                   analytic.best_values[i] /
                                       exhaustive.best_values[i]);
        }
        equal_winners +=
            analytic.best_tags[i] == exhaustive.best_tags[i] ? 1 : 0;
    }
    std::printf("sweep winner quality: worst objective ratio %.6f, "
                "%zu/%zu identical dataflow tags\n",
                worst_ratio, equal_winners, sweep.size());

    // Golden parity: analytic_verified re-runs each catalog search in
    // both modes and reports the objective ratio (1.0 = exact).
    const std::vector<GoldenConfig>& catalog = golden_configs();
    std::size_t parity = 0;
    for (const GoldenConfig& config : catalog) {
        GoldenSearchSetup setup = golden_search_setup(config);
        setup.options.mode = SearchMode::kAnalyticVerified;
        setup.options.threads = options.threads;
        const AttentionSearchResult result =
            search_attention(setup.accel, setup.dims, setup.options);
        const bool exact = result.found && result.verified &&
                           result.verified_ratio == 1.0;
        parity += exact ? 1 : 0;
        if (!exact) {
            std::printf("golden %s: ratio %.6f (NOT exact)\n",
                        config.id.c_str(), result.verified_ratio);
        }
    }
    std::printf("golden parity: %zu/%zu exact\n\n", parity,
                catalog.size());

    JsonWriter json;
    json.begin_object();
    json.field("bench", "mapper_speedup");
    json.field("threads", static_cast<std::uint64_t>(threads));
    json.field("repeats", static_cast<std::uint64_t>(repeats));
    json.field("quick", quick);
    write_leg(json, "exhaustive", exhaustive);
    write_leg(json, "exhaustive_pruned", pruned);
    write_leg(json, "analytic", analytic);
    json.field("speedup_x", speedup);
    json.field("speedup_vs_pruned_x", speedup_pruned);
    json.field("sweep_worst_objective_ratio", worst_ratio);
    json.field("sweep_equal_winners",
               static_cast<std::uint64_t>(equal_winners));
    json.field("sweep_dims", static_cast<std::uint64_t>(sweep.size()));
    json.key("golden");
    json.begin_object();
    json.field("configs", static_cast<std::uint64_t>(catalog.size()));
    json.field("parity", static_cast<std::uint64_t>(parity));
    json.end_object();
    json.end_object();

    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    out << json.str() << '\n';
    out.close();
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}

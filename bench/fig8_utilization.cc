/**
 * @file
 * Reproduces Figure 8: compute utilization of the ten dataflow policies
 * (Base, Base-M/B/H, Base-opt, FLAT-M/B/H/Rx, FLAT-opt) as the on-chip
 * buffer sweeps from 20KB to 2GB, at the L-A / Block / Model levels.
 * (a) BERT under edge resources, (b) XLM under cloud resources.
 */
#include "bench_util.h"

using namespace flat;
using namespace flat::bench;

namespace {

void
sweep_platform(const char* title, const AccelConfig& platform,
               const ModelConfig& model,
               const std::vector<std::uint64_t>& seq_lens,
               std::uint64_t rx, CsvWriter* csv)
{
    const std::vector<DataflowPolicy> policies = figure8_policies(rx);
    SimOptions options;
    options.quick = true;

    for (std::uint64_t n : seq_lens) {
        const Workload w = make_workload(model, kBatch, n);
        for (Scope scope :
             {Scope::kLogitAttend, Scope::kBlock, Scope::kModel}) {
            std::printf("\n%s  %s  Len%llu  (%s level)\n", title,
                        model.name.c_str(),
                        static_cast<unsigned long long>(n),
                        to_string(scope).c_str());
            std::vector<std::string> header{"buffer"};
            for (const DataflowPolicy& p : policies) {
                header.push_back(p.name());
            }
            TextTable table(header);
            for (std::uint64_t buf : figure8_buffer_sweep()) {
                AccelConfig accel = platform;
                accel.sg_bytes = buf;
                const Simulator sim(accel);
                std::vector<std::string> row{format_bytes(buf)};
                for (const DataflowPolicy& policy : policies) {
                    const double util =
                        sim.run(w, scope, policy, options).util();
                    row.push_back(fmt(util, 3));
                    if (csv != nullptr) {
                        csv->add_row({platform.name, model.name,
                                      std::to_string(n),
                                      to_string(scope),
                                      std::to_string(buf), policy.name(),
                                      fmt(util, 5)});
                    }
                }
                table.add_row(row);
            }
            table.print(std::cout);
        }
    }
}

} // namespace

int
main()
{
    banner("Figure 8 — compute utilization vs on-chip buffer size",
           "Util = ideal runtime / modeled runtime; buffer sweep "
           "20KB..2GB; batch 64");

    auto csv = open_csv("fig8.csv", {"platform", "model", "seq", "scope",
                                     "buffer_bytes", "policy", "util"});
    CsvWriter* csv_ptr = csv ? &*csv : nullptr;

    // (a) BERT under edge platform resources; Rx = 64 rows.
    sweep_platform("(a) edge", edge_accel(), bert_base(),
                   edge_seq_sweep(), 64, csv_ptr);

    // (b) XLM under cloud platform resources; larger Rx for the larger
    // array (§6.2.2).
    sweep_platform("(b) cloud", cloud_accel(), xlm(), cloud_seq_sweep(),
                   512, csv_ptr);

    std::printf(
        "\nExpected shape (paper): Base caps near 0.6; Base-M needs the "
        "full tensor to fit\nbefore it beats Base; FLAT-Rx approaches "
        "cap utilization with the smallest buffer;\nbeyond 64K only "
        "FLAT-Rx/FLAT-opt stay near cap; FLAT-opt >= Base-opt "
        "everywhere.\n");
    return 0;
}

/**
 * @file
 * Reproduces Figure 8: compute utilization of the ten dataflow policies
 * (Base, Base-M/B/H, Base-opt, FLAT-M/B/H/Rx, FLAT-opt) as the on-chip
 * buffer sweeps from 20KB to 2GB, at the L-A / Block / Model levels.
 * (a) BERT under edge resources, (b) XLM under cloud resources.
 */
#include "bench_util.h"

using namespace flat;
using namespace flat::bench;

namespace {

/** DSE work done by one platform sweep, for the throughput report. */
struct SweepStats {
    std::size_t evaluated = 0;
    std::size_t pruned = 0;
};

SweepStats
sweep_platform(const char* title, const AccelConfig& platform,
               const ModelConfig& model,
               const std::vector<std::uint64_t>& seq_lens,
               std::uint64_t rx, unsigned threads, CsvWriter* csv)
{
    const std::vector<DataflowPolicy> policies = figure8_policies(rx);
    SimOptions options;
    options.quick = true;
    options.threads = threads;
    SweepStats stats;

    for (std::uint64_t n : seq_lens) {
        const Workload w = make_workload(model, kBatch, n);
        for (Scope scope :
             {Scope::kLogitAttend, Scope::kBlock, Scope::kModel}) {
            std::printf("\n%s  %s  Len%llu  (%s level)\n", title,
                        model.name.c_str(),
                        static_cast<unsigned long long>(n),
                        to_string(scope).c_str());
            std::vector<std::string> header{"buffer"};
            for (const DataflowPolicy& p : policies) {
                header.push_back(p.name());
            }
            TextTable table(header);
            for (std::uint64_t buf : figure8_buffer_sweep()) {
                AccelConfig accel = platform;
                accel.sg_bytes = buf;
                const Simulator sim(accel);
                std::vector<std::string> row{format_bytes(buf)};
                for (const DataflowPolicy& policy : policies) {
                    const ScopeReport report =
                        sim.run(w, scope, policy, options);
                    const double util = report.util();
                    stats.evaluated += report.la_points_evaluated;
                    stats.pruned += report.la_points_pruned;
                    row.push_back(fmt(util, 3));
                    if (csv != nullptr) {
                        csv->add_row({platform.name, model.name,
                                      std::to_string(n),
                                      to_string(scope),
                                      std::to_string(buf), policy.name(),
                                      fmt(util, 5)});
                    }
                }
                table.add_row(row);
            }
            table.print(std::cout);
        }
    }
    return stats;
}

} // namespace

int
main(int argc, char** argv)
{
    banner("Figure 8 — compute utilization vs on-chip buffer size",
           "Util = ideal runtime / modeled runtime; buffer sweep "
           "20KB..2GB; batch 64");

    auto csv = open_csv("fig8.csv", {"platform", "model", "seq", "scope",
                                     "buffer_bytes", "policy", "util"});
    CsvWriter* csv_ptr = csv ? &*csv : nullptr;
    const unsigned threads = cli_threads(argc, argv);

    const ScopedTimer timer;
    SweepStats stats;

    // (a) BERT under edge platform resources; Rx = 64 rows.
    const SweepStats edge_stats =
        sweep_platform("(a) edge", edge_accel(), bert_base(),
                       edge_seq_sweep(), 64, threads, csv_ptr);
    stats.evaluated += edge_stats.evaluated;
    stats.pruned += edge_stats.pruned;

    // (b) XLM under cloud platform resources; larger Rx for the larger
    // array (§6.2.2).
    const SweepStats cloud_stats =
        sweep_platform("(b) cloud", cloud_accel(), xlm(),
                       cloud_seq_sweep(), 512, threads, csv_ptr);
    stats.evaluated += cloud_stats.evaluated;
    stats.pruned += cloud_stats.pruned;

    std::printf("\n");
    print_search_stats("figure 8 DSE total", stats.evaluated,
                       stats.pruned, timer.seconds());

    std::printf(
        "\nExpected shape (paper): Base caps near 0.6; Base-M needs the "
        "full tensor to fit\nbefore it beats Base; FLAT-Rx approaches "
        "cap utilization with the smallest buffer;\nbeyond 64K only "
        "FLAT-Rx/FLAT-opt stay near cap; FLAT-opt >= Base-opt "
        "everywhere.\n");
    return 0;
}

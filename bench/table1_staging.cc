/**
 * @file
 * Reproduces Table 1: the on-chip buffer size required to stage weights
 * and activations for the projection operators (K/Q/V/O) and for the
 * L/A pair, at D=1024, 16-bit, across sequence lengths and head counts.
 */
#include "analysis/roofline.h"
#include "bench_util.h"

using namespace flat;
using namespace flat::bench;

int
main()
{
    banner("Table 1 — on-chip staging requirement",
           "Buf Req = bytes to stage weights+activations on-chip "
           "(D=1024, 16-bit)");

    const std::uint64_t d = 1024;
    const std::uint32_t bpe = 2;
    struct Config {
        std::uint64_t h;
        std::uint64_t n;
    };
    const Config configs[] = {{1, 512},       {16, 512},
                              {1, 2048},      {16, 2048},
                              {1, 14 * 1024}, {16, 14 * 1024}};

    TextTable table({"H", "N", "D", "K/Q/V/O Buf Req", "L/A Buf Req"});
    auto csv = open_csv("table1.csv",
                        {"h", "n", "d", "qkvo_bytes", "la_bytes"});
    for (const Config& cfg : configs) {
        const StagingRequirement req =
            staging_requirement(cfg.n, d, cfg.h, bpe);
        table.add_row({std::to_string(cfg.h), std::to_string(cfg.n),
                       std::to_string(d), format_bytes(req.qkvo_bytes),
                       format_bytes(req.la_bytes)});
        if (csv) {
            csv->add_row({std::to_string(cfg.h), std::to_string(cfg.n),
                          std::to_string(d),
                          std::to_string(req.qkvo_bytes),
                          std::to_string(req.la_bytes)});
        }
    }
    table.print(std::cout);

    std::printf(
        "\nPaper reference (16-bit): K/Q/V/O 4MB/10MB/62MB at "
        "N=512/2K/14K;\nL/A 2.5MB|10MB, 16MB|142MB, 474MB|6.6GB at "
        "H=1|16.\nThe L/A requirement grows as O(H*N^2): quadratic in N "
        "and linear in heads,\nwhile the projections stay O(N*D).\n");
    return 0;
}

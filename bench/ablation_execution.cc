/**
 * @file
 * Ablation: interleaved (FLAT, §5.1 choice) vs spatially pipelined vs
 * sequential execution of the fused L-A pair, at the same granularity
 * and staging. Quantifies the §5.1 argument: interleaving avoids the
 * split-array imbalance and pipeline fill of the pipelined variant
 * while keeping the two-stage prefetch window.
 */
#include <algorithm>

#include "bench_util.h"
#include "costmodel/attention_cost.h"
#include "costmodel/execution_style.h"
#include "costmodel/gemm_engine.h"
#include "dse/search.h"

using namespace flat;
using namespace flat::bench;

int
main()
{
    banner("Ablation — execution style of the fused L-A pair",
           "Same dataflow (H-Gran / R-Gran, all tensors staged); only "
           "the execution changes");

    TextTable table({"platform", "model", "SeqLen", "granularity",
                     "sequential", "pipelined", "interleaved (FLAT)",
                     "flash (C-Gran)"});
    auto csv = open_csv("ablation_execution.csv",
                        {"platform", "model", "seq", "gran", "seq_util",
                         "seq_bound", "pipe_util", "pipe_bound",
                         "inter_util", "inter_bound", "flash_util",
                         "flash_bound", "flash_dram_ratio"});

    struct Case {
        AccelConfig accel;
        ModelConfig model;
    };
    const Case cases[] = {{edge_accel(), bert_base()},
                          {cloud_accel(), xlm()}};

    for (const Case& c : cases) {
        for (std::uint64_t n : {2048u, 8192u, 32768u}) {
            const Workload w = make_workload(c.model, kBatch, n);
            const AttentionDims dims = AttentionDims::from_workload(w);
            for (Granularity g : {Granularity::kHead, Granularity::kRow}) {
                FusedDataflow df;
                df.cross = {g, 4 * c.accel.pe_rows};
                df.l2_logit = default_l2_tile(
                    c.accel, GemmShape{256, dims.head_dim, dims.kv_len,
                                       1, OperandKind::kActivation,
                                       OperandKind::kActivation},
                    c.accel.sg_bytes / 4,
                    Stationarity::kOutputStationary);
                df.l2_attend = default_l2_tile(
                    c.accel, GemmShape{256, dims.kv_len, dims.head_dim,
                                       1, OperandKind::kActivation,
                                       OperandKind::kActivation},
                    c.accel.sg_bytes / 4,
                    Stationarity::kOutputStationary);

                // All three styles are evaluated through the one
                // timeline evaluator; the cost wrappers consume the
                // same timelines, so util() and bound_by agree.
                const double inter =
                    model_flat_attention(c.accel, dims, df).util();
                const std::string inter_bound = to_string(
                    flat_attention_timeline(c.accel, dims, df).bound_by);
                const double pipe =
                    model_pipelined_attention(c.accel, dims, df).util();
                const std::string pipe_bound = to_string(
                    pipelined_attention_timeline(c.accel, dims, df)
                        .bound_by);
                // Flash cannot run M/B/H/R tiles — its recurrence
                // needs column blocks — so its column shows the
                // SAME R rows streamed C = 4 x array-width key
                // columns at a time (the closest C-Gran relative of
                // the R-Gran row), on the R-Gran rows only.
                const bool has_flash = g == Granularity::kRow;
                double flash = 0.0;
                double flash_dram_ratio = 0.0;
                std::string flash_bound = "n/a";
                if (has_flash) {
                    FusedDataflow fdf = df;
                    fdf.cross = {Granularity::kColumn,
                                 4 * c.accel.pe_rows,
                                 4 * c.accel.pe_cols};
                    const std::uint64_t col_tile =
                        std::min<std::uint64_t>(fdf.cross.cols,
                                                dims.kv_len);
                    fdf.l2_logit = default_l2_tile(
                        c.accel,
                        GemmShape{256, dims.head_dim, col_tile, 1,
                                  OperandKind::kActivation,
                                  OperandKind::kActivation},
                        c.accel.sg_bytes / 4,
                        Stationarity::kOutputStationary);
                    fdf.l2_attend = default_l2_tile(
                        c.accel,
                        GemmShape{256, col_tile, dims.head_dim, 1,
                                  OperandKind::kActivation,
                                  OperandKind::kActivation},
                        c.accel.sg_bytes / 4,
                        Stationarity::kOutputStationary);
                    const OperatorCost flash_cost =
                        model_flash_attention(c.accel, dims, fdf);
                    flash = flash_cost.util();
                    flash_bound = to_string(
                        attention_timeline(flash_execution_style(),
                                           c.accel, dims, fdf)
                            .bound_by);
                    flash_dram_ratio =
                        flash_cost.activity.traffic.total_dram() /
                        model_flat_attention(c.accel, dims, df)
                            .activity.traffic.total_dram();
                }
                const bool has_seq = g != Granularity::kRow;
                const double seq =
                    has_seq // baseline cannot run row granularity
                        ? model_baseline_attention(c.accel, dims, df)
                              .util()
                        : 0.0;
                const std::string seq_bound =
                    has_seq ? to_string(baseline_attention_timeline(
                                            c.accel, dims, df,
                                            BaselineOverlap::kFull)
                                            .bound_by)
                            : "n/a";

                const auto cell = [](double util,
                                     const std::string& bound) {
                    return fmt(util, 3) + " (" + bound + ")";
                };
                table.add_row({c.accel.name, c.model.name,
                               std::to_string(n), df.cross.tag(),
                               has_seq ? cell(seq, seq_bound) : "n/a",
                               cell(pipe, pipe_bound),
                               cell(inter, inter_bound),
                               has_flash ? cell(flash, flash_bound)
                                         : "n/a"});
                if (csv) {
                    csv->add_row({c.accel.name, c.model.name,
                                  std::to_string(n), df.cross.tag(),
                                  fmt(seq, 4), seq_bound, fmt(pipe, 4),
                                  pipe_bound, fmt(inter, 4),
                                  inter_bound, fmt(flash, 4),
                                  flash_bound,
                                  fmt(flash_dram_ratio, 4)});
                }
            }
        }
    }
    table.print(std::cout);
    std::printf(
        "\nBoth fused styles keep the intermediate on-chip and beat the "
        "sequential baseline. Interleaving\nwins (or ties within noise) "
        "wherever the two stages are imbalanced — A's narrow n=dk maps "
        "poorly\non wide half-arrays (see cloud rows) — and §5.1's "
        "remaining arguments (array-split area, pipeline\nfill/drain, "
        "inefficiency on non-fused operators) all favor interleaving "
        "too; they lie outside the\nL-A scope measured here.\n");

    // Second view: let each style's DSE pick its own best dataflow.
    // The style menu comes from the registry, so a newly registered
    // execution style shows up here with no bench change. Ratios are
    // against the FLAT pick — flash earns its place on long
    // memory-bound sequences, where the R-Gran floor forces FLAT into
    // tiny row tiles or DRAM-spilled intermediates while flash streams
    // column blocks with the intermediate in the register tier.
    std::printf("\nDSE-picked optimum per registered style (edge, "
                "bert, L-A runtime; ratios vs the FLAT pick):\n");
    TextTable dse_table({"SeqLen", "style", "picked dataflow",
                         "cycles vs FLAT", "DRAM vs FLAT"});
    auto dse_csv = open_csv("ablation_execution_dse.csv",
                            {"seq", "style", "tag", "cycles_ratio",
                             "dram_ratio"});
    for (std::uint64_t n : {8192u, 32768u, 65536u}) {
        const Workload w = make_workload(bert_base(), kBatch, n);
        const AttentionDims dims = AttentionDims::from_workload(w);
        AttentionSearchOptions opt;
        opt.quick = true;
        const AttentionSearchResult flat_best =
            search_attention(edge_accel(), dims, opt);
        for (const ExecutionStyle* style : execution_styles()) {
            AttentionSearchOptions styled = opt;
            styled.fused = style->fused();
            styled.styles = {style->id()};
            const AttentionSearchResult best =
                search_attention(edge_accel(), dims, styled);
            if (!best.found) {
                dse_table.add_row({std::to_string(n), style->id(),
                                   "infeasible", "-", "-"});
                continue;
            }
            const double cycles_ratio = best.best.cost.cycles /
                                        flat_best.best.cost.cycles;
            const double dram_ratio =
                best.best.cost.activity.traffic.total_dram() /
                flat_best.best.cost.activity.traffic.total_dram();
            dse_table.add_row({std::to_string(n), style->id(),
                               best.best.dataflow.tag(),
                               fmt(cycles_ratio, 3),
                               fmt(dram_ratio, 3)});
            if (dse_csv) {
                dse_csv->add_row({std::to_string(n), style->id(),
                                  best.best.dataflow.tag(),
                                  fmt(cycles_ratio, 4),
                                  fmt(dram_ratio, 4)});
            }
        }
    }
    dse_table.print(std::cout);
    std::printf(
        "\nA ratio < 1 means flash wins outright: its online softmax "
        "legalizes C-Gran tiles below the\nR-Gran floor, so on "
        "long-sequence memory-bound shapes `--style all` picks flash "
        "and the speedup\ntracks the DRAM-traffic ratio.\n");
    return 0;
}

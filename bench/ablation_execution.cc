/**
 * @file
 * Ablation: interleaved (FLAT, §5.1 choice) vs spatially pipelined vs
 * sequential execution of the fused L-A pair, at the same granularity
 * and staging. Quantifies the §5.1 argument: interleaving avoids the
 * split-array imbalance and pipeline fill of the pipelined variant
 * while keeping the two-stage prefetch window.
 */
#include "bench_util.h"
#include "costmodel/attention_cost.h"
#include "costmodel/gemm_engine.h"

using namespace flat;
using namespace flat::bench;

int
main()
{
    banner("Ablation — execution style of the fused L-A pair",
           "Same dataflow (H-Gran / R-Gran, all tensors staged); only "
           "the execution changes");

    TextTable table({"platform", "model", "SeqLen", "granularity",
                     "sequential", "pipelined", "interleaved (FLAT)"});
    auto csv = open_csv("ablation_execution.csv",
                        {"platform", "model", "seq", "gran", "seq_util",
                         "seq_bound", "pipe_util", "pipe_bound",
                         "inter_util", "inter_bound"});

    struct Case {
        AccelConfig accel;
        ModelConfig model;
    };
    const Case cases[] = {{edge_accel(), bert_base()},
                          {cloud_accel(), xlm()}};

    for (const Case& c : cases) {
        for (std::uint64_t n : {2048u, 8192u, 32768u}) {
            const Workload w = make_workload(c.model, kBatch, n);
            const AttentionDims dims = AttentionDims::from_workload(w);
            for (Granularity g : {Granularity::kHead, Granularity::kRow}) {
                FusedDataflow df;
                df.cross = {g, 4 * c.accel.pe_rows};
                df.l2_logit = default_l2_tile(
                    c.accel, GemmShape{256, dims.head_dim, dims.kv_len,
                                       1, OperandKind::kActivation,
                                       OperandKind::kActivation},
                    c.accel.sg_bytes / 4,
                    Stationarity::kOutputStationary);
                df.l2_attend = default_l2_tile(
                    c.accel, GemmShape{256, dims.kv_len, dims.head_dim,
                                       1, OperandKind::kActivation,
                                       OperandKind::kActivation},
                    c.accel.sg_bytes / 4,
                    Stationarity::kOutputStationary);

                // All three styles are evaluated through the one
                // timeline evaluator; the cost wrappers consume the
                // same timelines, so util() and bound_by agree.
                const double inter =
                    model_flat_attention(c.accel, dims, df).util();
                const std::string inter_bound = to_string(
                    flat_attention_timeline(c.accel, dims, df).bound_by);
                const double pipe =
                    model_pipelined_attention(c.accel, dims, df).util();
                const std::string pipe_bound = to_string(
                    pipelined_attention_timeline(c.accel, dims, df)
                        .bound_by);
                const bool has_seq = g != Granularity::kRow;
                const double seq =
                    has_seq // baseline cannot run row granularity
                        ? model_baseline_attention(c.accel, dims, df)
                              .util()
                        : 0.0;
                const std::string seq_bound =
                    has_seq ? to_string(baseline_attention_timeline(
                                            c.accel, dims, df,
                                            BaselineOverlap::kFull)
                                            .bound_by)
                            : "n/a";

                const auto cell = [](double util,
                                     const std::string& bound) {
                    return fmt(util, 3) + " (" + bound + ")";
                };
                table.add_row({c.accel.name, c.model.name,
                               std::to_string(n), df.cross.tag(),
                               has_seq ? cell(seq, seq_bound) : "n/a",
                               cell(pipe, pipe_bound),
                               cell(inter, inter_bound)});
                if (csv) {
                    csv->add_row({c.accel.name, c.model.name,
                                  std::to_string(n), df.cross.tag(),
                                  fmt(seq, 4), seq_bound, fmt(pipe, 4),
                                  pipe_bound, fmt(inter, 4),
                                  inter_bound});
                }
            }
        }
    }
    table.print(std::cout);
    std::printf(
        "\nBoth fused styles keep the intermediate on-chip and beat the "
        "sequential baseline. Interleaving\nwins (or ties within noise) "
        "wherever the two stages are imbalanced — A's narrow n=dk maps "
        "poorly\non wide half-arrays (see cloud rows) — and §5.1's "
        "remaining arguments (array-split area, pipeline\nfill/drain, "
        "inefficiency on non-fused operators) all favor interleaving "
        "too; they lie outside the\nL-A scope measured here.\n");
    return 0;
}

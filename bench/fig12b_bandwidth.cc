/**
 * @file
 * Reproduces Figure 12(b): the off-chip bandwidth each accelerator
 * needs to hold Util >= 0.95 on the most bandwidth-bound L-A operator
 * (XLM, cloud resources) as the sequence length sweeps 2K..512K.
 */
#include <cmath>

#include "bench_util.h"

using namespace flat;
using namespace flat::bench;

namespace {

double
util_at_bw(const AcceleratorSpec& spec, const Workload& w, double bw)
{
    AccelConfig cloud = cloud_accel();
    cloud.offchip_bw = bw;
    cloud.onchip_bw = std::max(cloud.onchip_bw, 2.0 * bw);
    SimOptions options;
    options.quick = true;
    const Simulator sim(cloud);
    return sim.run(w, Scope::kLogitAttend, spec, options).util();
}

/**
 * Smallest off-chip BW at which Util reaches @p fraction of this
 * accelerator's own compute-bound roof (its Util at unbounded BW).
 * The paper's absolute 0.95 target is expressed the same way relative
 * to its model's roof.
 */
double
required_bw(const AcceleratorSpec& spec, const Workload& w,
            double fraction)
{
    double lo = 1e9;     // 1 GB/s
    double hi = 512e12;  // 512 TB/s
    const double roof = util_at_bw(spec, w, hi);
    const double target = fraction * roof;
    for (int iter = 0; iter < 40; ++iter) {
        const double mid = std::sqrt(lo * hi); // geometric bisection
        if (util_at_bw(spec, w, mid) >= target) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    return hi;
}

} // namespace

int
main()
{
    banner("Figure 12(b) — off-chip BW needed for Util >= 0.95 (L-A)",
           "XLM under cloud resources (32MB SG); geometric bisection "
           "over the BW axis");

    const double target = 0.95;
    const char* accels[] = {"FlexAccel-M", "FlexAccel", "ATTACC"};
    TextTable table({"SeqLen", "FlexAccel-M", "FlexAccel", "ATTACC",
                     "ATTACC saving vs FlexAccel"});
    auto csv = open_csv("fig12b.csv",
                        {"seq", "accel", "required_bw_bytes_per_s"});

    double sum_saving_flexm = 0.0;
    double sum_saving_flex = 0.0;
    std::size_t count = 0;
    for (std::uint64_t n : {2048u, 4096u, 8192u, 16384u, 32768u, 65536u,
                            131072u, 262144u, 524288u}) {
        const Workload w = make_workload(xlm(), kBatch, n);
        double bw[3];
        for (int i = 0; i < 3; ++i) {
            bw[i] = required_bw(AcceleratorSpec::parse(accels[i]), w,
                                target);
            if (csv) {
                csv->add_row({std::to_string(n), accels[i],
                              strprintf("%.4g", bw[i])});
            }
        }
        table.add_row({std::to_string(n), format_bandwidth(bw[0]),
                       format_bandwidth(bw[1]), format_bandwidth(bw[2]),
                       fmt(100.0 * (1.0 - bw[2] / bw[1]), 1) + "%"});
        sum_saving_flexm += 1.0 - bw[2] / bw[0];
        sum_saving_flex += 1.0 - bw[2] / bw[1];
        ++count;
    }
    table.print(std::cout);

    std::printf("\nAverage BW-requirement reduction: %.0f%% vs "
                "FlexAccel-M, %.0f%% vs FlexAccel "
                "(paper: 88%% and 82%% for XLM@cloud).\n"
                "Expected shape: required BW falls until ~4-8K (op "
                "intensity rises with N), then climbs once the live "
                "footprint outgrows the 32MB buffer — except for "
                "ATTACC, whose R-Gran footprint stays O(N).\n",
                100.0 * sum_saving_flexm / count,
                100.0 * sum_saving_flex / count);
    return 0;
}

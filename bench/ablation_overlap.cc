/**
 * @file
 * Ablation: how much of ATTACC's reported speedup depends on how
 * generously the sequential baseline is modeled. With kFull the
 * baseline hides off-chip transfers behind compute inside each stage
 * window (double-buffered); with kSerialized it does not. The paper's
 * edge-platform speedups at long sequences (~2.8x) sit near the
 * serialized end; our default (kFull) is the more charitable baseline.
 */
#include "bench_util.h"

using namespace flat;
using namespace flat::bench;

int
main()
{
    banner("Ablation — baseline transfer/compute overlap",
           "ATTACC speedup over FlexAccel (model level) under both "
           "baseline assumptions");

    const AccelConfig edge = edge_accel();
    const Simulator sim(edge);
    TextTable table({"model", "SeqLen", "speedup (overlapped base)",
                     "speedup (serialized base)"});
    auto csv = open_csv("ablation_overlap.csv",
                        {"model", "seq", "speedup_full",
                         "speedup_serialized"});

    for (const ModelConfig& model : {bert_base(), xlm()}) {
        for (std::uint64_t n : {512u, 4096u, 16384u, 65536u, 262144u}) {
            const Workload w = make_workload(model, kBatch, n);
            SimOptions options;
            options.quick = true;

            const double attacc =
                sim.run(w, Scope::kModel, AcceleratorSpec::parse("attacc"),
                        options)
                    .cycles;
            const double flex_full =
                sim.run(w, Scope::kModel,
                        AcceleratorSpec::parse("flexaccel"), options)
                    .cycles;
            options.baseline_overlap = BaselineOverlap::kSerialized;
            const double flex_serial =
                sim.run(w, Scope::kModel,
                        AcceleratorSpec::parse("flexaccel"), options)
                    .cycles;

            table.add_row({model.name, std::to_string(n),
                           fmt_x(flex_full / attacc),
                           fmt_x(flex_serial / attacc)});
            if (csv) {
                csv->add_row({model.name, std::to_string(n),
                              fmt(flex_full / attacc, 3),
                              fmt(flex_serial / attacc, 3)});
            }
        }
    }
    table.print(std::cout);
    std::printf(
        "\nThe paper's reported edge speedups at 64K-256K (2.8-3.1x) "
        "are only reachable when the baseline\ndoes NOT overlap "
        "transfers with compute; with a double-buffered baseline the "
        "long-sequence edge gap\nshrinks because NEITHER dataflow fits "
        "the 512KB buffer (see Table 2) and both become BW-bound.\n");
    return 0;
}

/**
 * @file
 * Extension (§7 composition claim): FLAT is orthogonal to model-level
 * sparsity techniques such as Longformer-style local attention. This
 * bench composes the two: local attention shrinks the logits tensor
 * from O(N^2) to O(N*w), and FLAT on top keeps even that slice
 * on-chip — the wins multiply instead of competing.
 */
#include "bench_util.h"

using namespace flat;
using namespace flat::bench;

int
main()
{
    banner("Extension — FLAT composed with local (windowed) attention",
           "XLM on the cloud platform, batch 64; L-A level");

    const Simulator sim(cloud_accel());
    SimOptions options;
    options.quick = true;

    TextTable table({"SeqLen", "pattern", "Base-opt Util",
                     "FLAT-opt Util", "FLAT speedup over Base",
                     "logits tensor"});
    auto csv = open_csv("extension_sparse.csv",
                        {"seq", "window", "base_util", "flat_util",
                         "speedup", "logits_bytes"});

    for (std::uint64_t n : {16384u, 65536u, 262144u}) {
        for (std::uint64_t window : {0u, 256u, 1024u}) {
            const Workload w =
                (window == 0)
                    ? make_workload(xlm(), kBatch, n)
                    : make_local_attention_workload(xlm(), kBatch, n,
                                                    window);
            const ScopeReport base = sim.run(
                w, Scope::kLogitAttend, DataflowPolicy::parse("base-opt"),
                options);
            const ScopeReport flat_rep = sim.run(
                w, Scope::kLogitAttend, DataflowPolicy::parse("flat-opt"),
                options);
            const std::uint64_t logits_bytes =
                w.softmax_op().output_elems() * 2;
            const std::string pattern =
                window == 0 ? "dense"
                            : strprintf("local w=%llu",
                                        static_cast<unsigned long long>(
                                            window));
            table.add_row({std::to_string(n), pattern,
                           fmt(base.util(), 3), fmt(flat_rep.util(), 3),
                           fmt_x(base.cycles / flat_rep.cycles),
                           format_bytes(logits_bytes)});
            if (csv) {
                csv->add_row({std::to_string(n), std::to_string(window),
                              fmt(base.util(), 4),
                              fmt(flat_rep.util(), 4),
                              fmt(base.cycles / flat_rep.cycles, 3),
                              std::to_string(logits_bytes)});
            }
        }
        table.add_separator();
    }
    table.print(std::cout);

    std::printf(
        "\nLocal attention removes the quadratic *compute*; FLAT removes "
        "the intermediate's *off-chip\ntraffic*. Composed, the logits "
        "slice is O(R*w) — small enough that even the edge-class buffer\n"
        "stays compute-bound at any N. (The functional counterpart, "
        "attention_flat_local, is validated\nin "
        "tests/kernels/test_local_attention.cc.)\n");
    return 0;
}

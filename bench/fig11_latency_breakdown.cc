/**
 * @file
 * Reproduces Figure 11: end-to-end latency breakdown (L-A operators vs
 * Projections vs FCs, plus the non-stall ideal) across BaseAccel,
 * FlexAccel and ATTACC. (a) BERT at edge, (b) XLM at cloud.
 *
 * The L-A bar is additionally split per stage (prefetch / logit /
 * softmax / attend / writeback / cold start) from the evaluated phase
 * timeline of the picked dataflow — the same ledger the cost model and
 * `flatsim --trace` consume.
 */
#include "bench_util.h"

using namespace flat;
using namespace flat::bench;

namespace {

void
breakdown(const char* title, const AccelConfig& platform,
          const ModelConfig& model,
          const std::vector<std::uint64_t>& seq_lens, CsvWriter* csv)
{
    SimOptions options;
    options.quick = true;
    const char* accels[] = {"BaseAccel", "FlexAccel", "ATTACC"};

    for (std::uint64_t n : seq_lens) {
        const Workload w = make_workload(model, kBatch, n);
        std::printf("\n%s  %s  Len%llu — model-level latency "
                    "(ms; block x %u)\n",
                    title, model.name.c_str(),
                    static_cast<unsigned long long>(n),
                    model.num_blocks);
        TextTable table({"accelerator", "L-A", "L-A split L/sm/A",
                         "L-A bound", "Projection", "FCs", "total",
                         "non-stall (ideal)"});
        const Simulator sim(platform);
        for (const char* name : accels) {
            const ScopeReport r = sim.run(
                w, Scope::kModel, AcceleratorSpec::parse(name), options);
            const double ms = 1e3 * platform.cycle_time();
            table.add_row({name, fmt(r.breakdown.la_cycles * ms, 2),
                           fmt(r.la_stages.logit_cycles * ms, 2) + "/" +
                               fmt(r.la_stages.softmax_cycles * ms, 2) +
                               "/" +
                               fmt(r.la_stages.attend_cycles * ms, 2),
                           r.la_stages.bound_by,
                           fmt(r.breakdown.proj_cycles * ms, 2),
                           fmt(r.breakdown.fc_cycles * ms, 2),
                           fmt(r.cycles * ms, 2),
                           fmt(r.ideal_cycles * ms, 2)});
            if (csv != nullptr) {
                csv->add_row({platform.name, model.name,
                              std::to_string(n), name,
                              fmt(r.breakdown.la_cycles, 1),
                              fmt(r.la_stages.prefetch_cycles, 1),
                              fmt(r.la_stages.logit_cycles, 1),
                              fmt(r.la_stages.softmax_cycles, 1),
                              fmt(r.la_stages.attend_cycles, 1),
                              fmt(r.la_stages.writeback_cycles, 1),
                              fmt(r.la_stages.cold_start_cycles, 1),
                              r.la_stages.bound_by,
                              fmt(r.breakdown.proj_cycles, 1),
                              fmt(r.breakdown.fc_cycles, 1),
                              fmt(r.ideal_cycles, 1)});
            }
        }
        table.print(std::cout);
    }
}

} // namespace

int
main()
{
    banner("Figure 11 — end-to-end latency breakdown",
           "Projections/FCs are identical on FlexAccel and ATTACC; the "
           "L-A share is what FLAT shrinks");

    auto csv = open_csv(
        "fig11.csv",
        {"platform", "model", "seq", "accel", "la_cycles",
         "la_prefetch_cycles", "la_logit_cycles", "la_softmax_cycles",
         "la_attend_cycles", "la_writeback_cycles", "la_cold_cycles",
         "la_bound_by", "proj_cycles", "fc_cycles", "ideal_cycles"});
    CsvWriter* csv_ptr = csv ? &*csv : nullptr;

    breakdown("(a) edge", edge_accel(), bert_base(),
              {std::uint64_t{512}, std::uint64_t{4096},
               std::uint64_t{65536}},
              csv_ptr);
    breakdown("(b) cloud", cloud_accel(), xlm(),
              {std::uint64_t{4096}, std::uint64_t{65536},
               std::uint64_t{262144}},
              csv_ptr);

    std::printf("\nExpected shape (paper): at 512 all accelerators are "
                "near-ideal; as N grows the L-A bar dominates on the "
                "baselines while ATTACC stays close to non-stall.\n");
    return 0;
}

/**
 * @file
 * Ablation: the FLAT feature ladder. Starting from the plain sequential
 * dataflow, add one mechanism at a time — L3 staging, cross-operator
 * fusion, fine R granularity, and finally the full DSE over staging
 * flags and tiles — and measure where the utilization actually comes
 * from (DESIGN.md design-choice ablation).
 */
#include "bench_util.h"

using namespace flat;
using namespace flat::bench;

int
main()
{
    banner("Ablation — where FLAT's utilization comes from",
           "L-A-level Util on the edge platform (BERT, batch 64)");

    const char* ladder[] = {
        "base",     // sequential, no staging
        "base-opt", // + L3 staging & tile/order DSE (still sequential)
        "flat-h",   // + cross-operator fusion (head granularity)
        "flat-r64", // + fine row granularity
        "flat-opt", // + staging-flag / granularity DSE
    };

    TextTable table({"SeqLen", "buffer", "Base", "+L3/DSE (Base-opt)",
                     "+fusion (FLAT-H)", "+R-Gran (FLAT-R64)",
                     "+flag DSE (FLAT-opt)"});
    auto csv = open_csv("ablation_features.csv",
                        {"seq", "buffer_bytes", "policy", "util"});

    for (std::uint64_t n : {512u, 4096u, 65536u}) {
        const Workload w = make_workload(bert_base(), kBatch, n);
        for (std::uint64_t buf : {512 * kKiB, 8 * kMiB, 64 * kMiB}) {
            AccelConfig accel = edge_accel();
            accel.sg_bytes = buf;
            const Simulator sim(accel);
            SimOptions options;
            options.quick = true;

            std::vector<std::string> row{std::to_string(n),
                                         format_bytes(buf)};
            for (const char* policy : ladder) {
                const double util =
                    sim.run(w, Scope::kLogitAttend,
                            DataflowPolicy::parse(policy), options)
                        .util();
                row.push_back(fmt(util, 3));
                if (csv) {
                    csv->add_row({std::to_string(n), std::to_string(buf),
                                  policy, fmt(util, 5)});
                }
            }
            table.add_row(row);
        }
        table.add_separator();
    }
    table.print(std::cout);
    std::printf(
        "\nReading: staging/DSE alone (column 2) helps only while the "
        "O(N^2) working set fits; fusion\n(column 3) removes the "
        "intermediate round trip; R granularity (column 4) is what "
        "makes the\nfootprint O(N) so small buffers suffice; the flag "
        "DSE (column 5) recovers the best mix.\n");
    return 0;
}

/**
 * @file
 * Architecture ablations the cost model supports (§5.3.1):
 *  (1) distribution/reduction NoC family — systolic vs tree vs
 *      crossbar trade fill/drain skew for wiring cost;
 *  (2) element bit width — FLAT composes with quantization (§7): the
 *      traffic shrinks but the dataflow ordering is unchanged;
 *  (3) SFU sizing — the lanes needed so softmax never bottlenecks the
 *      fused pipeline (the §6.1 provisioning note).
 */
#include "bench_util.h"

using namespace flat;
using namespace flat::bench;

namespace {

double
la_util(const AccelConfig& accel, const ModelConfig& model,
        std::uint64_t n, const char* policy)
{
    const Simulator sim(accel);
    SimOptions options;
    options.quick = true;
    return sim
        .run(make_workload(model, kBatch, n), Scope::kLogitAttend,
             DataflowPolicy::parse(policy), options)
        .util();
}

void
noc_ablation()
{
    std::printf("(1) NoC family (edge BERT, L-A Util):\n\n");
    TextTable table({"SeqLen", "systolic", "tree", "crossbar"});
    for (std::uint64_t n : {512u, 4096u, 65536u}) {
        std::vector<std::string> row{std::to_string(n)};
        for (NocKind kind : {NocKind::kSystolic, NocKind::kTree,
                             NocKind::kCrossbar}) {
            AccelConfig accel = edge_accel();
            accel.distribution_noc = kind;
            accel.reduction_noc = kind;
            row.push_back(fmt(la_util(accel, bert_base(), n, "flat-opt"),
                              3));
        }
        table.add_row(row);
    }
    table.print(std::cout);
    std::printf("\nLower-latency NoCs shave the exposed fill/drain skew; "
                "the effect is small because double\nbuffering hides "
                "most of it behind long accumulation runs.\n\n");
}

void
bitwidth_ablation()
{
    std::printf("(2) Element width (cloud XLM, L-A Util & energy):\n\n");
    TextTable table({"SeqLen", "int8 Util", "fp16 Util", "fp32 Util",
                     "int8 energy vs fp16"});
    for (std::uint64_t n : {4096u, 65536u}) {
        std::vector<std::string> row{std::to_string(n)};
        double energy[3] = {0, 0, 0};
        int idx = 0;
        for (std::uint32_t bpe : {1u, 2u, 4u}) {
            AccelConfig accel = cloud_accel();
            accel.bytes_per_element = bpe;
            const Simulator sim(accel);
            SimOptions options;
            options.quick = true;
            const ScopeReport rep = sim.run(
                make_workload(xlm(), kBatch, n), Scope::kLogitAttend,
                DataflowPolicy::parse("flat-opt"), options);
            row.push_back(fmt(rep.util(), 3));
            energy[idx++] = rep.energy_j;
        }
        row.push_back(fmt(energy[0] / energy[1], 2));
        table.add_row(row);
    }
    table.print(std::cout);
    std::printf("\nQuantization (a model-level technique, §7) composes "
                "with FLAT: narrower elements halve the\nfootprint and "
                "traffic, so the same buffer reaches cap at twice the "
                "sequence length.\n\n");
}

void
sfu_ablation()
{
    std::printf("(3) SFU lanes needed so softmax costs <2%% of L-A time "
                "(edge BERT):\n\n");
    TextTable table({"SeqLen", "min lanes", "Util @ min", "Util @ 1 lane"});
    for (std::uint64_t n : {512u, 4096u, 32768u}) {
        double util_cap = 0.0;
        {
            AccelConfig accel = edge_accel();
            accel.sfu_lanes = 65536.0; // effectively free softmax
            util_cap = la_util(accel, bert_base(), n, "flat-r64");
        }
        double one_lane = 0.0;
        std::uint32_t min_lanes = 0;
        for (std::uint32_t lanes : {1u, 4u, 16u, 64u, 256u, 1024u}) {
            AccelConfig accel = edge_accel();
            accel.sfu_lanes = lanes;
            const double util =
                la_util(accel, bert_base(), n, "flat-r64");
            if (lanes == 1) {
                one_lane = util;
            }
            if (min_lanes == 0 && util >= 0.98 * util_cap) {
                min_lanes = lanes;
            }
        }
        table.add_row({std::to_string(n), std::to_string(min_lanes),
                       fmt(util_cap, 3), fmt(one_lane, 3)});
    }
    table.print(std::cout);
    std::printf("\nThe softmax sits on the fused critical path (§5.3.1); "
                "one SFU lane per ~2*dk/PEs of MAC\nthroughput keeps it "
                "invisible — the provisioning the paper assumes in "
                "§6.1.\n");
}

} // namespace

int
main()
{
    banner("Ablation — architecture knobs of the cost model",
           "NoC family, element bit width, SFU sizing");
    noc_ablation();
    bitwidth_ablation();
    sfu_ablation();
    return 0;
}

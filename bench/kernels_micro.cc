/**
 * @file
 * Google-benchmark microbenchmarks of the functional kernels: baseline
 * (materialized) vs FLAT (row-streamed) attention on the host CPU, plus
 * the measured off-chip-equivalent traffic of each. On a cache-based
 * CPU the FLAT kernel's O(R*N) working set is also friendlier than the
 * baseline's O(N^2), so the speed gap is a (weak) host-side analogue of
 * the paper's accelerator result; the traffic counters are the precise
 * one.
 */
#include <benchmark/benchmark.h>

#include "kernels/attention.h"
#include "kernels/softmax.h"
#include "kernels/transformer_block.h"

namespace flat {
namespace {

struct Inputs {
    Matrix q, k, v;
};

Inputs
make_inputs(std::size_t n, std::size_t dk)
{
    Inputs in{Matrix(n, dk), Matrix(n, dk), Matrix(n, dk)};
    fill_random(in.q, 1);
    fill_random(in.k, 2);
    fill_random(in.v, 3);
    return in;
}

void
BM_AttentionReference(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const Inputs in = make_inputs(n, 64);
    for (auto _ : state) {
        Matrix out = attention_reference(in.q, in.k, in.v);
        benchmark::DoNotOptimize(out.data());
    }
    TrafficMeter meter;
    attention_reference(in.q, in.k, in.v, {}, &meter);
    state.counters["offchip_bytes"] =
        static_cast<double>(meter.total_offchip());
    state.counters["intermediate_offchip"] =
        static_cast<double>(meter.offchip_bytes("intermediate"));
    state.SetItemsProcessed(state.iterations() * 2 * n * n * 64);
}
BENCHMARK(BM_AttentionReference)->Arg(128)->Arg(512)->Arg(1024);

void
BM_AttentionFlat(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const std::size_t rows = static_cast<std::size_t>(state.range(1));
    const Inputs in = make_inputs(n, 64);
    for (auto _ : state) {
        Matrix out = attention_flat(in.q, in.k, in.v, rows);
        benchmark::DoNotOptimize(out.data());
    }
    TrafficMeter meter;
    attention_flat(in.q, in.k, in.v, rows, {}, &meter);
    state.counters["offchip_bytes"] =
        static_cast<double>(meter.total_offchip());
    state.counters["intermediate_offchip"] =
        static_cast<double>(meter.offchip_bytes("intermediate"));
    state.SetItemsProcessed(state.iterations() * 2 * n * n * 64);
}
BENCHMARK(BM_AttentionFlat)
    ->Args({128, 16})
    ->Args({512, 16})
    ->Args({512, 64})
    ->Args({1024, 64});

void
BM_AttentionLayerForward(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const std::size_t row_tile =
        static_cast<std::size_t>(state.range(1));
    const std::size_t d = 256;
    Matrix x(n, d);
    fill_random(x, 4);
    const AttentionLayerWeights w = AttentionLayerWeights::random(d, 5);
    for (auto _ : state) {
        Matrix out = attention_layer_forward(x, x, w, 4, row_tile);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_AttentionLayerForward)->Args({256, 0})->Args({256, 32});

void
BM_SoftmaxRows(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Matrix m(n, n);
    fill_random(m, 6);
    for (auto _ : state) {
        Matrix copy = m;
        softmax_rows(copy);
        benchmark::DoNotOptimize(copy.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_SoftmaxRows)->Arg(256)->Arg(1024);

void
BM_AttentionFlatLocal(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const std::size_t window = static_cast<std::size_t>(state.range(1));
    const Inputs in = make_inputs(n, 64);
    for (auto _ : state) {
        Matrix out = attention_flat_local(in.q, in.k, in.v, 32, window);
        benchmark::DoNotOptimize(out.data());
    }
    TrafficMeter meter;
    attention_flat_local(in.q, in.k, in.v, 32, window, {}, &meter);
    state.counters["offchip_bytes"] =
        static_cast<double>(meter.total_offchip());
    state.SetItemsProcessed(state.iterations() * 2 * n *
                            std::min(n, 2 * window + 1) * 64);
}
BENCHMARK(BM_AttentionFlatLocal)
    ->Args({1024, 64})
    ->Args({4096, 64})
    ->Args({4096, 256});

void
BM_TransformerBlock(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const std::size_t row_tile =
        static_cast<std::size_t>(state.range(1));
    const std::size_t d = 256;
    Matrix x(n, d);
    fill_random(x, 7);
    const TransformerBlockWeights w =
        TransformerBlockWeights::random(d, 4 * d, 9);
    for (auto _ : state) {
        Matrix out = transformer_block_forward(x, w, 4, row_tile);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_TransformerBlock)->Args({256, 0})->Args({256, 32});

} // namespace
} // namespace flat

BENCHMARK_MAIN();

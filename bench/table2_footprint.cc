/**
 * @file
 * Reproduces Table 2: the live on-chip memory footprint of the FLAT
 * dataflow at each tiling granularity (M/B/H/R), from both the closed
 * forms and the footprint model, for a representative workload.
 */
#include "bench_util.h"
#include "dataflow/fused_dataflow.h"

using namespace flat;
using namespace flat::bench;

int
main()
{
    banner("Table 2 — live memory footprint per granularity",
           "M: O(8BDN + BHN^2)   B: O(8DN + HN^2)   H: O(8Ndk + N^2)   "
           "R: O(4Rdk + 4Ndk + RN)");

    AttentionDims dims;
    dims.batch = 64;
    dims.heads = 16;
    dims.head_dim = 64;
    const std::uint64_t r_rows = 64;
    const std::uint32_t bpe = 2;

    TextTable table({"N", "M-Gran", "B-Gran", "H-Gran",
                     strprintf("R-Gran (R=%llu)",
                               static_cast<unsigned long long>(r_rows))});
    auto csv = open_csv("table2.csv",
                        {"n", "m_bytes", "b_bytes", "h_bytes", "r_bytes"});

    for (std::uint64_t n : {512u, 2048u, 16384u, 65536u, 262144u}) {
        dims.q_len = n;
        dims.kv_len = n;
        std::vector<std::string> row{std::to_string(n)};
        std::vector<std::string> csv_row{std::to_string(n)};
        for (Granularity g :
             {Granularity::kMulti, Granularity::kBatch, Granularity::kHead,
              Granularity::kRow}) {
            const std::uint64_t bytes =
                table2_footprint_elems(g, dims, r_rows) * bpe;
            row.push_back(format_bytes(bytes));
            csv_row.push_back(std::to_string(bytes));
        }
        table.add_row(row);
        if (csv) {
            csv->add_row(csv_row);
        }
    }
    table.print(std::cout);

    // Cross-check: the footprint model with all FLAT-tiles enabled
    // reproduces the closed forms exactly.
    dims.q_len = dims.kv_len = 16384;
    FusedDataflow df;
    df.l2_logit = {64, 64, 64};
    df.l2_attend = {64, 64, 64};
    std::printf("\nModel vs closed form at N=16K (must match):\n");
    for (Granularity g : {Granularity::kMulti, Granularity::kBatch,
                          Granularity::kHead, Granularity::kRow}) {
        df.cross = {g, r_rows};
        const std::uint64_t model = fused_live_footprint(df, dims, bpe);
        const std::uint64_t closed =
            table2_footprint_elems(g, dims, r_rows) * bpe;
        std::printf("  %s-Gran: model=%s closed=%s %s\n",
                    to_string(g).c_str(), format_bytes(model).c_str(),
                    format_bytes(closed).c_str(),
                    model == closed ? "OK" : "MISMATCH");
    }
    std::printf("\nOnly R-Gran stays O(N): it is the granularity that "
                "lets FLAT scale to long sequences.\n");
    return 0;
}

/**
 * @file
 * Serving-layer throughput bench: serves one fixed seeded arrival
 * trace (edge, bert) under both batching policies and reports
 *
 *  - the SIMULATED serving quality at that offered load — sustained
 *    tokens/s and p50/p99 request latency — which must not regress
 *    when the cost model or scheduler changes, and
 *  - the WALL-CLOCK simulator throughput (scheduler steps/s and
 *    step-cost lookups/s), the knob the step-cost memo and the eval
 *    cache underneath it exist to keep fast.
 *
 * Emits BENCH_serving.json (tools/bench_compare.py diffs two of them
 * and gates on the steps/s headline).
 *
 * Usage: serving_throughput [--requests N] [--threads N] [--out FILE]
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "serving/serving.h"
#include "workload/model_config.h"

using namespace flat;
using namespace flat::bench;

namespace {

struct Leg {
    ServeReport report;
    double wall_seconds = 0.0;

    double
    steps_per_sec() const
    {
        const double steps = static_cast<double>(
            report.prefill_steps + report.decode_steps);
        return wall_seconds > 0.0 ? steps / wall_seconds : 0.0;
    }
};

Leg
serve_leg(const AccelConfig& accel, const ModelConfig& model,
          const std::vector<Request>& requests, SchedPolicy policy,
          unsigned threads)
{
    ServeOptions options;
    options.sched.policy = policy;
    options.sched.max_batch = 8;
    options.sim.quick = true;
    options.sim.threads = threads;
    Leg leg;
    ScopedTimer timer;
    leg.report = run_serving(accel, model, requests, options);
    leg.wall_seconds = timer.seconds();
    return leg;
}

void
write_leg(JsonWriter& json, const std::string& key, const Leg& leg)
{
    json.key(key);
    json.begin_object();
    json.field("completed", leg.report.completed);
    json.field("sim_tokens_per_s", leg.report.tokens_per_s);
    json.field("p50_s", leg.report.p50_s);
    json.field("p99_s", leg.report.p99_s);
    json.field("makespan_s", leg.report.makespan_s);
    json.field("prefill_steps", leg.report.prefill_steps);
    json.field("decode_steps", leg.report.decode_steps);
    json.field("cost_lookups", leg.report.cost_lookups);
    json.field("cost_memo_hits", leg.report.cost_memo_hits);
    json.field("wall_seconds", leg.wall_seconds);
    json.field("steps_per_sec", leg.steps_per_sec());
    json.end_object();
}

} // namespace

int
main(int argc, char** argv)
{
    banner("Serving throughput — traffic simulator + step-cost memo",
           "One seeded trace (edge, bert) under both batching "
           "policies: simulated SLOs and wall-clock simulator rate");

    std::uint64_t n_requests = 48;
    std::string out_path = "BENCH_serving.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
            const long parsed = std::atol(argv[++i]);
            if (parsed > 0) {
                n_requests = static_cast<std::uint64_t>(parsed);
            }
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        }
    }
    const unsigned threads = cli_threads(argc, argv);

    const AccelConfig accel = edge_accel();
    const ModelConfig model = bert_base();
    ArrivalOptions arrivals;
    arrivals.kind = ArrivalKind::kPoisson;
    arrivals.seed = 42;
    arrivals.rate_rps = 8.0; // fixed offered load
    arrivals.requests = n_requests;
    arrivals.prompt_tokens = 512;
    arrivals.output_tokens = 16;
    const std::vector<Request> requests = generate_arrivals(arrivals);

    std::printf("trace: %llu poisson requests @ %.3g req/s, prompt "
                "~%llu, output %llu\n\n",
                static_cast<unsigned long long>(requests.size()),
                arrivals.rate_rps,
                static_cast<unsigned long long>(arrivals.prompt_tokens),
                static_cast<unsigned long long>(arrivals.output_tokens));

    TextTable table({"policy", "sim tokens/s", "p50", "p99",
                     "sim steps", "wall s", "steps/s (wall)"});
    std::vector<std::pair<std::string, Leg>> legs;
    for (const SchedPolicy policy : sched_policies()) {
        const Leg leg =
            serve_leg(accel, model, requests, policy, threads);
        const std::uint64_t steps =
            leg.report.prefill_steps + leg.report.decode_steps;
        table.add_row({to_string(policy),
                       fmt(leg.report.tokens_per_s, 4),
                       format_time(leg.report.p50_s),
                       format_time(leg.report.p99_s),
                       std::to_string(steps),
                       fmt(leg.wall_seconds, 3),
                       fmt(leg.steps_per_sec(), 0)});
        // JSON keys use underscores so bench_compare's dot-joined
        // flattening stays unambiguous.
        std::string key = to_string(policy);
        for (char& c : key) {
            if (c == '-') {
                c = '_';
            }
        }
        legs.emplace_back(key, leg);
    }
    table.print(std::cout);

    JsonWriter json;
    json.begin_object();
    json.field("bench", "serving_throughput");
    json.field("requests",
               static_cast<std::uint64_t>(requests.size()));
    json.field("offered_rps", arrivals.rate_rps);
    for (const auto& [key, leg] : legs) {
        write_leg(json, key, leg);
    }
    json.end_object();

    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out, "%s\n", json.str().c_str());
    std::fclose(out);
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}

/**
 * @file
 * Shared helpers for the figure/table reproduction binaries: standard
 * sweeps, formatting and CSV dumping. Each bench prints the rows/series
 * of one paper artifact; CSVs land in ./bench_out when it exists or can
 * be created.
 */
#ifndef FLAT_BENCH_BENCH_UTIL_H
#define FLAT_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table.h"
#include "common/units.h"
#include "core/simulator.h"
#include "workload/model_config.h"

namespace flat::bench {

/** Buffer sweep of Figure 8: 20KB to 2GB, roughly logarithmic. */
inline std::vector<std::uint64_t>
figure8_buffer_sweep()
{
    return {20 * kKiB,  64 * kKiB,        256 * kKiB, 512 * kKiB,
            2 * kMiB,   8 * kMiB,         32 * kMiB,  128 * kMiB,
            512 * kMiB, 2ull * 1024 * kMiB};
}

/** Sequence lengths of Figure 8(a) (edge) and 8(b) (cloud). */
inline std::vector<std::uint64_t>
edge_seq_sweep()
{
    return {512, 4096, 65536, 262144};
}

inline std::vector<std::uint64_t>
cloud_seq_sweep()
{
    return {4096, 16384, 65536, 262144};
}

/** The paper runs every model with batch 64 (§6.1). */
constexpr std::uint64_t kBatch = 64;

/** Formats a double with the given precision. */
inline std::string
fmt(double value, int precision = 3)
{
    return strprintf("%.*f", precision, value);
}

/** Formats a speedup like "2.48x". */
inline std::string
fmt_x(double value)
{
    return strprintf("%.2fx", value);
}

/** Opens a CSV in ./bench_out if the directory is usable. */
inline std::optional<CsvWriter>
open_csv(const std::string& name, std::vector<std::string> header)
{
    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    if (ec) {
        return std::nullopt;
    }
    try {
        return std::make_optional<CsvWriter>("bench_out/" + name,
                                             std::move(header));
    } catch (const Error&) {
        return std::nullopt;
    }
}

/** Banner printed by every bench binary. */
inline void
banner(const std::string& title, const std::string& what)
{
    std::printf("==============================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("==============================================\n\n");
}

/**
 * DSE worker threads for a bench binary: `--threads N` on the command
 * line wins, otherwise 0 ("auto" = FLAT_THREADS env, else all hardware
 * threads — see flat::default_threads()).
 */
inline unsigned
cli_threads(int argc, char** argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0) {
            const long parsed = std::atol(argv[i + 1]);
            if (parsed > 0) {
                return static_cast<unsigned>(parsed);
            }
        }
    }
    return 0;
}

/**
 * Scoped wall-clock timer. Reports elapsed seconds on demand and, when
 * given a label, prints "<label>: N.NNN s" once at scope exit.
 */
class ScopedTimer
{
  public:
    ScopedTimer() = default;

    explicit ScopedTimer(std::string label) : label_(std::move(label)) {}

    ~ScopedTimer()
    {
        if (!label_.empty()) {
            std::printf("%s: %.3f s\n", label_.c_str(), seconds());
        }
    }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    double seconds() const
    {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start_).count();
    }

  private:
    std::string label_;
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
};

/** One audit line for a finished DSE sweep: totals and throughput. */
inline void
print_search_stats(const std::string& what, std::size_t evaluated,
                   std::size_t pruned, double seconds)
{
    const double rate =
        (seconds > 0.0) ? static_cast<double>(evaluated) / seconds : 0.0;
    std::printf("%s: %zu points evaluated, %zu pruned (%.1f%% of "
                "space), %.3f s wall, %.0f points/s\n",
                what.c_str(), evaluated, pruned,
                (evaluated + pruned) > 0
                    ? 100.0 * static_cast<double>(pruned) /
                          static_cast<double>(evaluated + pruned)
                    : 0.0,
                seconds, rate);
}

} // namespace flat::bench

#endif // FLAT_BENCH_BENCH_UTIL_H

/**
 * @file
 * Shared helpers for the figure/table reproduction binaries: standard
 * sweeps, formatting and CSV dumping. Each bench prints the rows/series
 * of one paper artifact; CSVs land in ./bench_out when it exists or can
 * be created.
 */
#ifndef FLAT_BENCH_BENCH_UTIL_H
#define FLAT_BENCH_BENCH_UTIL_H

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table.h"
#include "common/units.h"
#include "core/simulator.h"
#include "workload/model_config.h"

namespace flat::bench {

/** Buffer sweep of Figure 8: 20KB to 2GB, roughly logarithmic. */
inline std::vector<std::uint64_t>
figure8_buffer_sweep()
{
    return {20 * kKiB,  64 * kKiB,        256 * kKiB, 512 * kKiB,
            2 * kMiB,   8 * kMiB,         32 * kMiB,  128 * kMiB,
            512 * kMiB, 2ull * 1024 * kMiB};
}

/** Sequence lengths of Figure 8(a) (edge) and 8(b) (cloud). */
inline std::vector<std::uint64_t>
edge_seq_sweep()
{
    return {512, 4096, 65536, 262144};
}

inline std::vector<std::uint64_t>
cloud_seq_sweep()
{
    return {4096, 16384, 65536, 262144};
}

/** The paper runs every model with batch 64 (§6.1). */
constexpr std::uint64_t kBatch = 64;

/** Formats a double with the given precision. */
inline std::string
fmt(double value, int precision = 3)
{
    return strprintf("%.*f", precision, value);
}

/** Formats a speedup like "2.48x". */
inline std::string
fmt_x(double value)
{
    return strprintf("%.2fx", value);
}

/** Opens a CSV in ./bench_out if the directory is usable. */
inline std::optional<CsvWriter>
open_csv(const std::string& name, std::vector<std::string> header)
{
    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    if (ec) {
        return std::nullopt;
    }
    try {
        return std::make_optional<CsvWriter>("bench_out/" + name,
                                             std::move(header));
    } catch (const Error&) {
        return std::nullopt;
    }
}

/** Banner printed by every bench binary. */
inline void
banner(const std::string& title, const std::string& what)
{
    std::printf("==============================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("==============================================\n\n");
}

} // namespace flat::bench

#endif // FLAT_BENCH_BENCH_UTIL_H

/**
 * @file
 * Extension (§3.1): multi-level on-chip hierarchy. The edge platform's
 * 512KB SRAM cannot hold FLAT's O(N) footprint at very long sequences
 * (Table 2: ~42MB at N=64K); a second-level eDRAM-class buffer between
 * the SG and DRAM absorbs the overflow and restores near-cap
 * utilization — while the baseline's O(N^2) intermediate outgrows any
 * plausible second level.
 */
#include "bench_util.h"

using namespace flat;
using namespace flat::bench;

int
main()
{
    banner("Extension — second-level on-chip buffer (eDRAM class)",
           "Edge platform + SG2 @ 200GB/s; BERT, batch 64, L-A level");

    TextTable table({"SeqLen", "SG2", "Base-opt Util", "FLAT-opt Util",
                     "FLAT DRAM traffic", "FLAT SG2 traffic"});
    auto csv = open_csv("extension_hierarchy.csv",
                        {"seq", "sg2_bytes", "base_util", "flat_util",
                         "dram_bytes", "sg2_traffic_bytes"});

    SimOptions options;
    options.quick = true;

    for (std::uint64_t n : {16384u, 65536u, 262144u}) {
        const Workload w = make_workload(bert_base(), kBatch, n);
        for (std::uint64_t sg2 : {std::uint64_t{0}, 16 * kMiB,
                                  64 * kMiB, 256 * kMiB}) {
            AccelConfig accel = edge_accel();
            accel.sg2_bytes = sg2;
            accel.sg2_bw = sg2 > 0 ? 200e9 : 0.0;
            const Simulator sim(accel);
            const ScopeReport base = sim.run(
                w, Scope::kLogitAttend, DataflowPolicy::parse("base-opt"),
                options);
            const ScopeReport flat_rep = sim.run(
                w, Scope::kLogitAttend, DataflowPolicy::parse("flat-opt"),
                options);
            table.add_row(
                {std::to_string(n),
                 sg2 == 0 ? "none" : format_bytes(sg2),
                 fmt(base.util(), 3), fmt(flat_rep.util(), 3),
                 format_bytes(static_cast<std::uint64_t>(
                     flat_rep.traffic.total_dram())),
                 format_bytes(static_cast<std::uint64_t>(
                     flat_rep.traffic.total_sg2()))});
            if (csv) {
                csv->add_row({std::to_string(n), std::to_string(sg2),
                              fmt(base.util(), 4),
                              fmt(flat_rep.util(), 4),
                              strprintf("%.4g",
                                        flat_rep.traffic.total_dram()),
                              strprintf("%.4g",
                                        flat_rep.traffic.total_sg2())});
            }
        }
        table.add_separator();
    }
    table.print(std::cout);

    std::printf(
        "\nThe hierarchy is an accelerator-design lever the paper's "
        "conclusion points at (§8): because FLAT's\nfootprint is O(N), "
        "a modest second-level buffer extends the compute-bound regime "
        "by another\norder of magnitude in N — the baseline's O(N^2) "
        "footprint gains almost nothing.\n");
    return 0;
}

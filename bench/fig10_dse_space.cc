/**
 * @file
 * Reproduces Figure 10: the FLAT design space for BERT (N=512) under
 * edge resources — every (granularity, staging, tiling) combination as
 * one point of (live memory footprint, utilization), plus the Pareto
 * frontier that a DSE objective would pick from.
 */
#include <algorithm>

#include "bench_util.h"
#include "dse/search.h"

using namespace flat;
using namespace flat::bench;

int
main(int argc, char** argv)
{
    banner("Figure 10 — the FLAT design space (BERT N=512, edge)",
           "Each point: one dataflow config; top-left = high Util at "
           "low footprint");

    const AccelConfig edge = edge_accel();
    const Workload w = make_workload(bert_base(), kBatch, 512);
    const AttentionDims dims = AttentionDims::from_workload(w);

    AttentionSearchOptions options;
    options.quick = true;
    options.fused = true;
    options.threads = cli_threads(argc, argv);

    const ScopedTimer explore_timer;
    const std::vector<DsePoint> points =
        explore_attention(edge, dims, options);
    print_search_stats("full-space sweep (explore)", points.size(), 0,
                       explore_timer.seconds());
    std::printf("\n");

    // Histogram: best Util per footprint decade.
    struct Bin {
        std::uint64_t lo;
        std::uint64_t hi;
        double best_util = 0.0;
        double worst_util = 1.0;
        std::size_t count = 0;
        std::string best_tag;
    };
    std::vector<Bin> bins;
    for (std::uint64_t lo = 16 * kKiB; lo < 64ull * kGiB; lo *= 4) {
        bins.push_back({lo, lo * 4, 0.0, 1.0, 0, ""});
    }
    auto csv = open_csv("fig10.csv", {"footprint_bytes", "util",
                                      "granularity", "flags", "tag"});
    for (const DsePoint& p : points) {
        const double util = p.cost.util();
        if (csv) {
            csv->add_row({std::to_string(p.cost.live_footprint_bytes),
                          fmt(util, 5), p.dataflow.cross.tag(),
                          p.dataflow.stage.tag(), p.dataflow.tag()});
        }
        for (Bin& bin : bins) {
            if (p.cost.live_footprint_bytes >= bin.lo &&
                p.cost.live_footprint_bytes < bin.hi) {
                ++bin.count;
                bin.worst_util = std::min(bin.worst_util, util);
                if (util > bin.best_util) {
                    bin.best_util = util;
                    bin.best_tag = p.dataflow.tag();
                }
            }
        }
    }

    TextTable table({"footprint bin", "#points", "best Util",
                     "worst Util", "best dataflow"});
    for (const Bin& bin : bins) {
        if (bin.count == 0) {
            continue;
        }
        table.add_row({format_bytes(bin.lo) + " - " +
                           format_bytes(bin.hi),
                       std::to_string(bin.count), fmt(bin.best_util, 3),
                       fmt(bin.worst_util, 3), bin.best_tag});
    }
    table.print(std::cout);

    // Pareto frontier: maximal Util among points with footprint <= x.
    std::vector<const DsePoint*> sorted;
    sorted.reserve(points.size());
    for (const DsePoint& p : points) {
        sorted.push_back(&p);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const DsePoint* a, const DsePoint* b) {
                  return a->cost.live_footprint_bytes <
                         b->cost.live_footprint_bytes;
              });
    std::printf("\nPareto frontier (footprint -> best reachable "
                "Util):\n");
    TextTable pareto({"live footprint", "Util", "dataflow"});
    double best = 0.0;
    for (const DsePoint* p : sorted) {
        if (p->cost.util() > best + 1e-4) {
            best = p->cost.util();
            pareto.add_row({format_bytes(p->cost.live_footprint_bytes),
                            fmt(best, 3), p->dataflow.tag()});
        }
    }
    pareto.print(std::cout);
    std::printf("\nDifferent DSE objectives pick different corners: "
                "max-Util (right-most high point), best "
                "Util-per-footprint (top-left), min footprint "
                "(left-most).\n");

    // The objective-driven search over the same space: the pruned,
    // parallel engine must land on the same optimum while touching a
    // fraction of the points.
    std::printf("\nDSE pick (runtime objective):\n");
    const ScopedTimer search_timer;
    const AttentionSearchResult picked =
        search_attention(edge, dims, options);
    print_search_stats("pruned search", picked.evaluated, picked.pruned,
                       search_timer.seconds());
    std::printf("best dataflow: %s (Util %.3f)\n",
                picked.best.dataflow.tag().c_str(),
                picked.best.cost.util());
    return 0;
}

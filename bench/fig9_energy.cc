/**
 * @file
 * Reproduces Figure 9: energy consumption of every data point of the
 * Figure 8 sweep, normalized by the largest energy in each sub-plot.
 */
#include "bench_util.h"

using namespace flat;
using namespace flat::bench;

namespace {

void
sweep_platform(const char* title, const AccelConfig& platform,
               const ModelConfig& model,
               const std::vector<std::uint64_t>& seq_lens,
               std::uint64_t rx, CsvWriter* csv)
{
    const std::vector<DataflowPolicy> policies = figure8_policies(rx);
    SimOptions options;
    options.quick = true;

    for (std::uint64_t n : seq_lens) {
        const Workload w = make_workload(model, kBatch, n);
        for (Scope scope :
             {Scope::kLogitAttend, Scope::kBlock, Scope::kModel}) {
            // First pass: collect energies to find the normalizer.
            std::vector<std::vector<double>> energy;
            const auto buffers = figure8_buffer_sweep();
            double max_energy = 0.0;
            for (std::uint64_t buf : buffers) {
                AccelConfig accel = platform;
                accel.sg_bytes = buf;
                const Simulator sim(accel);
                std::vector<double> row;
                for (const DataflowPolicy& policy : policies) {
                    const double e =
                        sim.run(w, scope, policy, options).energy_j;
                    row.push_back(e);
                    max_energy = std::max(max_energy, e);
                }
                energy.push_back(std::move(row));
            }

            std::printf("\n%s  %s  Len%llu  (%s level) — energy "
                        "normalized to %s%.3g J\n",
                        title, model.name.c_str(),
                        static_cast<unsigned long long>(n),
                        to_string(scope).c_str(), "max = ", max_energy);
            std::vector<std::string> header{"buffer"};
            for (const DataflowPolicy& p : policies) {
                header.push_back(p.name());
            }
            TextTable table(header);
            for (std::size_t i = 0; i < buffers.size(); ++i) {
                std::vector<std::string> row{format_bytes(buffers[i])};
                for (std::size_t j = 0; j < policies.size(); ++j) {
                    row.push_back(fmt(energy[i][j] / max_energy, 3));
                    if (csv != nullptr) {
                        csv->add_row({platform.name, model.name,
                                      std::to_string(n),
                                      to_string(scope),
                                      std::to_string(buffers[i]),
                                      policies[j].name(),
                                      strprintf("%.6g", energy[i][j])});
                    }
                }
                table.add_row(row);
            }
            table.print(std::cout);
        }
    }
}

} // namespace

int
main()
{
    banner("Figure 9 — normalized energy of every Figure 8 point",
           "Off-chip accesses dominate: dataflows with higher Util "
           "generally burn less energy");

    auto csv = open_csv("fig9.csv", {"platform", "model", "seq", "scope",
                                     "buffer_bytes", "policy",
                                     "energy_j"});
    CsvWriter* csv_ptr = csv ? &*csv : nullptr;

    sweep_platform("(a) edge", edge_accel(), bert_base(),
                   {std::uint64_t{512}, std::uint64_t{65536}}, 64,
                   csv_ptr);
    sweep_platform("(b) cloud", cloud_accel(), xlm(),
                   {std::uint64_t{4096}, std::uint64_t{65536}}, 512,
                   csv_ptr);

    std::printf("\nExpected shape (paper): FLAT-X and FLAT-opt sit below "
                "their Base counterparts; the saved O(N^2) off-chip "
                "round trips of the intermediate tensor are the "
                "dominant term.\n");
    return 0;
}

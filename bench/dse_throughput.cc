/**
 * @file
 * DSE throughput harness for the evaluation cache and the batched
 * timeline hot path. Four measurements:
 *
 *   1. full-space search_attention throughput (points/s) with the
 *      process-wide EvalCache disabled and then enabled — the headline
 *      points/s of the batched evaluator on a realistic search load;
 *   2. a cache-shaped sweep: the same searches with the staging flags
 *      pinned, which shrinks the point count ~32x while the per-search
 *      menu/table construction stays constant — the regime broad
 *      figure sweeps actually run in, where the cache's cross-search
 *      reuse dominates. `cache_speedup` is sourced from THIS regime
 *      (the full-space legs amortize table construction over >100k
 *      points per search, so their off/on ratio hovers near 1.0 by
 *      construction and mostly measures noise);
 *   3. the per-point hot path in isolation — the plain (allocating)
 *      model_flat_attention entry vs the scratch-buffer overload that
 *      reuses one AttentionEvalScratch across calls;
 *   4. heap allocations per evaluated point, via a replaced global
 *      operator new that counts every allocation in the process.
 *
 * Pruning is disabled for the throughput legs so "points" is the full
 * space size — a fixed work unit that makes points/s comparable across
 * runs, thread counts and cache settings.
 *
 * Timing is best-sustained: every (repeat, dims) search is timed on
 * its own and each dims keeps its minimum, so a leg's seconds is the
 * sum of per-dims minima over one pass of the workload. Means would
 * fold host drift and scheduler preemption of oversubscribed workers
 * into the number; the minimum is the reproducible throughput of the
 * code itself, and for the cache-on legs it reports the warm steady
 * state rather than smearing the one-time population pass into it.
 *
 * Emits BENCH_dse.json (tools/bench_compare.py diffs two of them and
 * fails on a >7.5% points/s regression; `ctest -L perf` runs that as a
 * smoke test).
 *
 * Usage: dse_throughput [--threads N] [--repeats R] [--out FILE]
 */
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <new>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "common/thread_pool.h"
#include "costmodel/attention_cost.h"
#include "costmodel/eval_cache.h"
#include "dse/search.h"

// ---------------------------------------------------------------------
// Instrumented allocator: counts every heap allocation in the process.
// Replacing these in any TU of the executable replaces them globally;
// the counter is relaxed-atomic so the hot path stays cheap.
// ---------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
} // namespace

void*
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size > 0 ? size : 1)) {
        return p;
    }
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

using namespace flat;
using namespace flat::bench;

namespace {

/** Restores the cache's enabled flag on every exit path. */
struct CacheEnabledGuard {
    bool saved = EvalCache::enabled();
    ~CacheEnabledGuard() { EvalCache::set_enabled(saved); }
};

struct SearchLeg {
    double seconds = 0.0;
    std::uint64_t points = 0;
    std::uint64_t allocations = 0;

    double
    points_per_sec() const
    {
        return seconds > 0.0 ? static_cast<double>(points) / seconds
                             : 0.0;
    }
};

/**
 * One leg over the workload. Every (repeat, dims) search is timed
 * individually and the per-dims MINIMUM is kept, so the leg reports
 * best-sustained throughput: the growth hosts are shared and a
 * leg-level wall total conflates machine drift with the thing being
 * measured. For the cache-on legs this also excludes the one-time
 * population pass — the steady state the cache exists for — instead
 * of smearing it into the mean.
 */
SearchLeg
run_searches(const AccelConfig& accel,
             const std::vector<AttentionDims>& sweep,
             const AttentionSearchOptions& options, unsigned repeats)
{
    SearchLeg leg;
    const std::uint64_t allocs_before =
        g_allocations.load(std::memory_order_relaxed);
    std::vector<double> best(sweep.size(),
                             std::numeric_limits<double>::infinity());
    std::vector<std::uint64_t> points(sweep.size(), 0);
    for (unsigned r = 0; r < repeats; ++r) {
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            const ScopedTimer timer;
            const AttentionSearchResult result =
                search_attention(accel, sweep[i], options);
            best[i] = std::min(best[i], timer.seconds());
            points[i] = result.evaluated + result.pruned;
        }
    }
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        leg.seconds += best[i];
        leg.points += points[i];
    }
    leg.allocations = g_allocations.load(std::memory_order_relaxed) -
                      allocs_before;
    return leg;
}

struct HotPathLeg {
    double ns_per_eval = 0.0;
    double allocs_per_eval = 0.0;
};

/** Repeated single-point evaluation through @p eval. */
template <typename Eval>
HotPathLeg
run_hot_path(unsigned iterations, const Eval& eval)
{
    // One warm-up call grows the scratch buffers to steady state.
    eval();
    const std::uint64_t allocs_before =
        g_allocations.load(std::memory_order_relaxed);
    const ScopedTimer timer;
    for (unsigned i = 0; i < iterations; ++i) {
        eval();
    }
    const double seconds = timer.seconds();
    const std::uint64_t allocs =
        g_allocations.load(std::memory_order_relaxed) - allocs_before;
    HotPathLeg leg;
    leg.ns_per_eval = iterations > 0 ? seconds * 1e9 / iterations : 0.0;
    leg.allocs_per_eval =
        iterations > 0 ? static_cast<double>(allocs) / iterations : 0.0;
    return leg;
}

} // namespace

int
main(int argc, char** argv)
{
    banner("DSE throughput — evaluation cache + hot-path memory",
           "points/s with the eval cache off vs on, per-point eval "
           "cost, allocations/point");

    unsigned repeats = 4;
    std::string out_path = "BENCH_dse.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
            const long parsed = std::atol(argv[++i]);
            if (parsed > 0) {
                repeats = static_cast<unsigned>(parsed);
            }
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        }
    }

    const AccelConfig accel = edge_accel();
    const ModelConfig bert = bert_base();
    std::vector<AttentionDims> sweep;
    for (const std::uint64_t seq : {512ull, 1024ull, 2048ull}) {
        sweep.push_back(AttentionDims::from_workload(
            make_workload(bert, /*batch=*/8, seq)));
    }

    AttentionSearchOptions options;
    options.quick = false; // full menus: a realistic per-search load
    options.fused = true;
    options.prune = false; // fixed work unit: points == full space
    options.threads = cli_threads(argc, argv);
    const unsigned threads = resolve_threads(options.threads);

    std::printf("workload: %zu dims x %u repeats, threads=%u, "
                "prune=off\n\n",
                sweep.size(), repeats, threads);

    CacheEnabledGuard guard;

    // Leg 1: identical full-space searches, cache off then on.
    EvalCache::set_enabled(false);
    const SearchLeg off = run_searches(accel, sweep, options, repeats);
    print_search_stats("cache off", off.points, 0, off.seconds);

    EvalCache::set_enabled(true);
    EvalCache::instance().clear();
    EvalCache::instance().reset_stats();
    const SearchLeg on = run_searches(accel, sweep, options, repeats);
    const CacheStats stats = EvalCache::instance().stats();
    print_search_stats("cache on ", on.points, 0, on.seconds);
    const double full_ratio = off.points_per_sec() > 0.0
                                  ? on.points_per_sec() /
                                        off.points_per_sec()
                                  : 0.0;
    std::printf("full-space cache on/off: %s  (hit rate %.1f%%, "
                "%llu hits [%llu L1] / %llu misses)\n\n",
                fmt_x(full_ratio).c_str(), 100.0 * stats.hit_rate(),
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.l1_hits),
                static_cast<unsigned long long>(stats.misses));

    // Leg 2: the cache-shaped sweep — quick menus and pinned staging
    // flags over a wider dims grid, i.e. the exact shape of the broad
    // Figure 8/9 sweeps: many small searches whose per-search cost is
    // menu/table construction, not point evaluation. Cross-search
    // reuse of those menus/tables is the point of the cache, so this
    // regime sources the headline `cache_speedup`.
    AttentionSearchOptions sweep_options = options;
    sweep_options.quick = true;
    sweep_options.fixed_flags = FusedStageFlags{};
    std::vector<AttentionDims> sweep_grid;
    for (const std::uint64_t batch : {1ull, 8ull}) {
        for (const std::uint64_t seq :
             {128ull, 256ull, 512ull, 1024ull, 2048ull, 4096ull}) {
            sweep_grid.push_back(AttentionDims::from_workload(
                make_workload(bert, batch, seq)));
        }
    }
    const unsigned sweep_repeats = repeats * 8;

    EvalCache::set_enabled(false);
    const SearchLeg sweep_off =
        run_searches(accel, sweep_grid, sweep_options, sweep_repeats);
    print_search_stats("sweep, cache off", sweep_off.points, 0,
                       sweep_off.seconds);

    EvalCache::set_enabled(true);
    EvalCache::instance().clear();
    EvalCache::instance().reset_stats();
    const SearchLeg sweep_on =
        run_searches(accel, sweep_grid, sweep_options, sweep_repeats);
    const CacheStats sweep_stats = EvalCache::instance().stats();
    print_search_stats("sweep, cache on ", sweep_on.points, 0,
                       sweep_on.seconds);
    const double speedup = sweep_off.points_per_sec() > 0.0
                               ? sweep_on.points_per_sec() /
                                     sweep_off.points_per_sec()
                               : 0.0;
    std::printf("cache speedup (sweep regime): %s  (hit rate %.1f%%, "
                "%llu hits [%llu L1] / %llu misses)\n\n",
                fmt_x(speedup).c_str(),
                100.0 * sweep_stats.hit_rate(),
                static_cast<unsigned long long>(sweep_stats.hits),
                static_cast<unsigned long long>(sweep_stats.l1_hits),
                static_cast<unsigned long long>(sweep_stats.misses));

    // Allocations per point: a cache-warm single-threaded search so the
    // counter sees only the evaluation hot path, not worker startup.
    AttentionSearchOptions serial = options;
    serial.threads = 1;
    const SearchLeg warm = run_searches(accel, sweep, serial, 1);
    const double allocs_per_point =
        warm.points > 0
            ? static_cast<double>(warm.allocations) /
                  static_cast<double>(warm.points)
            : 0.0;
    std::printf("allocations/point (cache warm, 1 thread): %.2f\n",
                allocs_per_point);

    // Leg 2: the per-point hot path in isolation on one dataflow.
    const AttentionDims dims = sweep.back();
    const AttentionSearchResult best =
        search_attention(accel, dims, serial);
    const FusedDataflow dataflow = best.best.dataflow;
    constexpr unsigned kEvalIters = 20000;
    const HotPathLeg plain = run_hot_path(kEvalIters, [&] {
        (void)model_flat_attention(accel, dims, dataflow);
    });
    AttentionEvalScratch scratch;
    const HotPathLeg reused = run_hot_path(kEvalIters, [&] {
        (void)model_flat_attention(accel, dims, dataflow, scratch);
    });
    std::printf("\nper-point eval (%u iters): plain %.0f ns "
                "(%.1f allocs), scratch %.0f ns (%.2f allocs) — %s\n",
                kEvalIters, plain.ns_per_eval, plain.allocs_per_eval,
                reused.ns_per_eval, reused.allocs_per_eval,
                fmt_x(reused.ns_per_eval > 0.0
                          ? plain.ns_per_eval / reused.ns_per_eval
                          : 0.0)
                    .c_str());

    JsonWriter json;
    json.begin_object();
    json.field("bench", "dse_throughput");
    json.field("threads", static_cast<std::uint64_t>(threads));
    json.field("repeats", static_cast<std::uint64_t>(repeats));
    json.key("cache_off");
    json.begin_object();
    json.field("seconds", off.seconds);
    json.field("points", off.points);
    json.field("points_per_sec", off.points_per_sec());
    json.end_object();
    json.key("cache_on");
    json.begin_object();
    json.field("seconds", on.seconds);
    json.field("points", on.points);
    json.field("points_per_sec", on.points_per_sec());
    json.field("hit_rate", stats.hit_rate());
    json.field("hits", stats.hits);
    json.field("l1_hits", stats.l1_hits);
    json.field("misses", stats.misses);
    json.end_object();
    json.key("cache_sweep");
    json.begin_object();
    json.field("repeats", static_cast<std::uint64_t>(sweep_repeats));
    json.key("off");
    json.begin_object();
    json.field("seconds", sweep_off.seconds);
    json.field("points", sweep_off.points);
    json.field("points_per_sec", sweep_off.points_per_sec());
    json.end_object();
    json.key("on");
    json.begin_object();
    json.field("seconds", sweep_on.seconds);
    json.field("points", sweep_on.points);
    json.field("points_per_sec", sweep_on.points_per_sec());
    json.field("hit_rate", sweep_stats.hit_rate());
    json.field("hits", sweep_stats.hits);
    json.field("l1_hits", sweep_stats.l1_hits);
    json.field("misses", sweep_stats.misses);
    json.end_object();
    json.end_object();
    json.field("cache_speedup", speedup);
    json.field("full_space_cache_ratio", full_ratio);
    json.field("allocs_per_point", allocs_per_point);
    json.key("hot_path");
    json.begin_object();
    json.field("plain_ns_per_eval", plain.ns_per_eval);
    json.field("plain_allocs_per_eval", plain.allocs_per_eval);
    json.field("scratch_ns_per_eval", reused.ns_per_eval);
    json.field("scratch_allocs_per_eval", reused.allocs_per_eval);
    json.field("speedup",
               reused.ns_per_eval > 0.0
                   ? plain.ns_per_eval / reused.ns_per_eval
                   : 0.0);
    json.end_object();
    json.end_object();

    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    out << json.str() << '\n';
    out.close();
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}

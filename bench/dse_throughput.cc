/**
 * @file
 * DSE throughput harness for the evaluation cache and the
 * allocation-free timeline hot path. Three measurements:
 *
 *   1. search_attention throughput (points/s) over a sweep-shaped
 *      workload — the same searches repeated with the process-wide
 *      EvalCache disabled and then enabled, so the cache's cross-point
 *      reuse shows up as a points/s ratio on identical work;
 *   2. the per-point hot path in isolation — the plain (allocating)
 *      model_flat_attention entry vs the scratch-buffer overload that
 *      reuses one AttentionEvalScratch across calls;
 *   3. heap allocations per evaluated point, via a replaced global
 *      operator new that counts every allocation in the process.
 *
 * Pruning is disabled for the throughput legs so "points" is the full
 * space size — a fixed work unit that makes points/s comparable across
 * runs, thread counts and cache settings.
 *
 * Emits BENCH_dse.json (tools/bench_compare.py diffs two of them and
 * fails on a >10% points/s regression; `ctest -L perf` runs that as a
 * smoke test).
 *
 * Usage: dse_throughput [--threads N] [--repeats R] [--out FILE]
 */
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>

#include "bench_util.h"
#include "common/json.h"
#include "common/thread_pool.h"
#include "costmodel/attention_cost.h"
#include "costmodel/eval_cache.h"
#include "dse/search.h"

// ---------------------------------------------------------------------
// Instrumented allocator: counts every heap allocation in the process.
// Replacing these in any TU of the executable replaces them globally;
// the counter is relaxed-atomic so the hot path stays cheap.
// ---------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
} // namespace

void*
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size > 0 ? size : 1)) {
        return p;
    }
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

using namespace flat;
using namespace flat::bench;

namespace {

/** Restores the cache's enabled flag on every exit path. */
struct CacheEnabledGuard {
    bool saved = EvalCache::enabled();
    ~CacheEnabledGuard() { EvalCache::set_enabled(saved); }
};

struct SearchLeg {
    double seconds = 0.0;
    std::uint64_t points = 0;
    std::uint64_t allocations = 0;

    double
    points_per_sec() const
    {
        return seconds > 0.0 ? static_cast<double>(points) / seconds
                             : 0.0;
    }
};

/** One pass over the sweep-shaped workload: every (dims) searched. */
SearchLeg
run_searches(const AccelConfig& accel,
             const std::vector<AttentionDims>& sweep,
             const AttentionSearchOptions& options, unsigned repeats)
{
    SearchLeg leg;
    const std::uint64_t allocs_before =
        g_allocations.load(std::memory_order_relaxed);
    const ScopedTimer timer;
    for (unsigned r = 0; r < repeats; ++r) {
        for (const AttentionDims& dims : sweep) {
            const AttentionSearchResult result =
                search_attention(accel, dims, options);
            leg.points += result.evaluated + result.pruned;
        }
    }
    leg.seconds = timer.seconds();
    leg.allocations = g_allocations.load(std::memory_order_relaxed) -
                      allocs_before;
    return leg;
}

struct HotPathLeg {
    double ns_per_eval = 0.0;
    double allocs_per_eval = 0.0;
};

/** Repeated single-point evaluation through @p eval. */
template <typename Eval>
HotPathLeg
run_hot_path(unsigned iterations, const Eval& eval)
{
    // One warm-up call grows the scratch buffers to steady state.
    eval();
    const std::uint64_t allocs_before =
        g_allocations.load(std::memory_order_relaxed);
    const ScopedTimer timer;
    for (unsigned i = 0; i < iterations; ++i) {
        eval();
    }
    const double seconds = timer.seconds();
    const std::uint64_t allocs =
        g_allocations.load(std::memory_order_relaxed) - allocs_before;
    HotPathLeg leg;
    leg.ns_per_eval = iterations > 0 ? seconds * 1e9 / iterations : 0.0;
    leg.allocs_per_eval =
        iterations > 0 ? static_cast<double>(allocs) / iterations : 0.0;
    return leg;
}

} // namespace

int
main(int argc, char** argv)
{
    banner("DSE throughput — evaluation cache + hot-path memory",
           "points/s with the eval cache off vs on, per-point eval "
           "cost, allocations/point");

    unsigned repeats = 4;
    std::string out_path = "BENCH_dse.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
            const long parsed = std::atol(argv[++i]);
            if (parsed > 0) {
                repeats = static_cast<unsigned>(parsed);
            }
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        }
    }

    const AccelConfig accel = edge_accel();
    const ModelConfig bert = bert_base();
    std::vector<AttentionDims> sweep;
    for (const std::uint64_t seq : {512ull, 1024ull, 2048ull}) {
        sweep.push_back(AttentionDims::from_workload(
            make_workload(bert, /*batch=*/8, seq)));
    }

    AttentionSearchOptions options;
    options.quick = false; // full menus: a realistic per-search load
    options.fused = true;
    options.prune = false; // fixed work unit: points == full space
    options.threads = cli_threads(argc, argv);
    const unsigned threads = resolve_threads(options.threads);

    std::printf("workload: %zu dims x %u repeats, threads=%u, "
                "prune=off\n\n",
                sweep.size(), repeats, threads);

    CacheEnabledGuard guard;

    // Leg 1: identical searches, cache off then on.
    EvalCache::set_enabled(false);
    const SearchLeg off = run_searches(accel, sweep, options, repeats);
    print_search_stats("cache off", off.points, 0, off.seconds);

    EvalCache::set_enabled(true);
    EvalCache::instance().clear();
    EvalCache::instance().reset_stats();
    const SearchLeg on = run_searches(accel, sweep, options, repeats);
    const CacheStats stats = EvalCache::instance().stats();
    print_search_stats("cache on ", on.points, 0, on.seconds);
    const double speedup = off.seconds > 0.0 && on.seconds > 0.0
                               ? off.points_per_sec() == 0.0
                                     ? 0.0
                                     : on.points_per_sec() /
                                           off.points_per_sec()
                               : 0.0;
    std::printf("cache speedup: %s  (hit rate %.1f%%, %llu hits / "
                "%llu misses)\n\n",
                fmt_x(speedup).c_str(), 100.0 * stats.hit_rate(),
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses));

    // Allocations per point: a cache-warm single-threaded search so the
    // counter sees only the evaluation hot path, not worker startup.
    AttentionSearchOptions serial = options;
    serial.threads = 1;
    const SearchLeg warm = run_searches(accel, sweep, serial, 1);
    const double allocs_per_point =
        warm.points > 0
            ? static_cast<double>(warm.allocations) /
                  static_cast<double>(warm.points)
            : 0.0;
    std::printf("allocations/point (cache warm, 1 thread): %.2f\n",
                allocs_per_point);

    // Leg 2: the per-point hot path in isolation on one dataflow.
    const AttentionDims dims = sweep.back();
    const AttentionSearchResult best =
        search_attention(accel, dims, serial);
    const FusedDataflow dataflow = best.best.dataflow;
    constexpr unsigned kEvalIters = 20000;
    const HotPathLeg plain = run_hot_path(kEvalIters, [&] {
        (void)model_flat_attention(accel, dims, dataflow);
    });
    AttentionEvalScratch scratch;
    const HotPathLeg reused = run_hot_path(kEvalIters, [&] {
        (void)model_flat_attention(accel, dims, dataflow, scratch);
    });
    std::printf("\nper-point eval (%u iters): plain %.0f ns "
                "(%.1f allocs), scratch %.0f ns (%.2f allocs) — %s\n",
                kEvalIters, plain.ns_per_eval, plain.allocs_per_eval,
                reused.ns_per_eval, reused.allocs_per_eval,
                fmt_x(reused.ns_per_eval > 0.0
                          ? plain.ns_per_eval / reused.ns_per_eval
                          : 0.0)
                    .c_str());

    JsonWriter json;
    json.begin_object();
    json.field("bench", "dse_throughput");
    json.field("threads", static_cast<std::uint64_t>(threads));
    json.field("repeats", static_cast<std::uint64_t>(repeats));
    json.key("cache_off");
    json.begin_object();
    json.field("seconds", off.seconds);
    json.field("points", off.points);
    json.field("points_per_sec", off.points_per_sec());
    json.end_object();
    json.key("cache_on");
    json.begin_object();
    json.field("seconds", on.seconds);
    json.field("points", on.points);
    json.field("points_per_sec", on.points_per_sec());
    json.field("hit_rate", stats.hit_rate());
    json.field("hits", stats.hits);
    json.field("misses", stats.misses);
    json.end_object();
    json.field("cache_speedup", speedup);
    json.field("allocs_per_point", allocs_per_point);
    json.key("hot_path");
    json.begin_object();
    json.field("plain_ns_per_eval", plain.ns_per_eval);
    json.field("plain_allocs_per_eval", plain.allocs_per_eval);
    json.field("scratch_ns_per_eval", reused.ns_per_eval);
    json.field("scratch_allocs_per_eval", reused.allocs_per_eval);
    json.field("speedup",
               reused.ns_per_eval > 0.0
                   ? plain.ns_per_eval / reused.ns_per_eval
                   : 0.0);
    json.end_object();
    json.end_object();

    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    out << json.str() << '\n';
    out.close();
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}

/**
 * @file
 * Scale-out speedup: L-A layer latency when one attention layer is
 * sharded across D = 1, 2, 4, 8, 16 FLAT devices, for the model zoo on
 * the cloud platform. For each D the scale-out DSE picks the best
 * (shard axis x per-device dataflow) combination end to end, so the
 * table shows the achievable speedup including collective costs — not
 * the ideal D-fold scaling. D=1 is bit-identical to the single-device
 * model (zero collective phases) and anchors every ratio.
 */
#include "bench_util.h"

#include "scaleout/scaleout_search.h"

using namespace flat;
using namespace flat::bench;

namespace {

struct Point {
    double speedup = 1.0;
    double efficiency = 1.0;
    ShardAxis axis = ShardAxis::kBatch;
    double exposed_collective_cycles = 0.0;
    double link_gb_per_device = 0.0;
};

ScaleOutSearchResult
evaluate(const AccelConfig& platform, const ModelConfig& model,
         std::uint64_t n, std::uint64_t batch, std::uint32_t devices,
         unsigned threads)
{
    const Workload w = make_workload(model, batch, n);
    ScaleOutSearchOptions options;
    options.attention.quick = true;
    options.attention.fused = true;
    options.attention.threads = threads;
    options.fabric = scaleout_preset("pod-ring");
    options.fabric.devices = devices;
    return search_scaleout(platform,
                           AttentionDims::from_workload(w), options);
}

} // namespace

int
main(int argc, char** argv)
{
    const unsigned threads = cli_threads(argc, argv);
    const std::vector<std::uint32_t> device_sweep = {1, 2, 4, 8, 16};
    const std::vector<std::uint64_t> seqs = {4096, 16384};
    const AccelConfig platform = cloud_accel();
    const ScaleOutConfig fabric = scaleout_preset("pod-ring");

    banner("Scale-out speedup (L-A layer)",
           strprintf("cloud platform, %s fabric (%s per link), batch %llu; "
                     "best shard axis per point",
                     fabric.name.c_str(),
                     format_bandwidth(fabric.link_bw).c_str(),
                     static_cast<unsigned long long>(kBatch)));

    auto csv = open_csv("scaleout_speedup.csv",
                        {"model", "seq", "batch", "devices", "axis",
                         "cycles", "speedup", "efficiency",
                         "exposed_collective_cycles",
                         "link_gb_per_device", "fleet_energy_j"});

    // Two regimes: batch 64 (the paper's serving batch — batch
    // sharding is embarrassingly parallel), and batch 1 (single-query
    // long-context serving — the batch axis cannot shard, so the DSE
    // must pay for head/sequence collectives).
    for (const std::uint64_t batch : {kBatch, std::uint64_t{1}}) {
        for (std::uint64_t n : seqs) {
            std::vector<std::string> header{"model"};
            for (std::uint32_t d : device_sweep) {
                header.push_back(strprintf("D=%u", d));
            }
            TextTable table(header);
            std::printf("batch = %llu, N = %llu "
                        "(speedup vs 1 device; best axis)\n",
                        static_cast<unsigned long long>(batch),
                        static_cast<unsigned long long>(n));

            for (const ModelConfig& model : model_zoo()) {
                double base_cycles = 0.0;
                std::vector<std::string> row{model.name};
                for (std::uint32_t d : device_sweep) {
                    const ScaleOutSearchResult result = evaluate(
                        platform, model, n, batch, d, threads);
                    FLAT_CHECK(result.found,
                               "no feasible sharding for "
                                   << model.name << " across " << d
                                   << " devices");
                    const ScaleOutCost& cost = result.best.cost;
                    if (d == 1) {
                        base_cycles = cost.cycles;
                        FLAT_CHECK(cost.collective_phases == 0,
                                   "D=1 must emit zero collective "
                                   "phases");
                    }
                    Point p;
                    p.speedup = base_cycles / cost.cycles;
                    p.efficiency = p.speedup / d;
                    p.axis = cost.axis;
                    p.exposed_collective_cycles =
                        cost.exposed_collective_cycles;
                    p.link_gb_per_device =
                        cost.link_bytes_per_device / 1e9;
                    row.push_back(
                        d == 1 ? "1.00x"
                               : strprintf("%.2fx (%s)", p.speedup,
                                           to_string(p.axis)));
                    if (csv) {
                        csv->add_row(
                            {model.name, std::to_string(n),
                             std::to_string(batch), std::to_string(d),
                             to_string(p.axis), fmt(cost.cycles, 2),
                             fmt(p.speedup, 4), fmt(p.efficiency, 4),
                             fmt(p.exposed_collective_cycles, 2),
                             fmt(p.link_gb_per_device, 3),
                             strprintf("%.6g",
                                       result.best.total_energy_j)});
                    }
                }
                table.add_row(row);
            }
            table.print(std::cout);
            std::printf("\n");
        }
    }
    if (csv) {
        std::printf("CSV: bench_out/scaleout_speedup.csv\n");
    }
    return 0;
}

/**
 * @file
 * Reproduces Figure 2: operational intensity and roofline position of
 * CONV / FC / L-A operators, the effect of batch size (helps FC, not
 * attention), and the raised ceiling from staging data on-chip.
 */
#include "analysis/roofline.h"
#include "bench_util.h"

using namespace flat;
using namespace flat::bench;

namespace {

void
print_intensity_table()
{
    std::printf("(a) Operational intensity (MACs/byte, 16-bit), and the "
                "attainable fraction of edge peak:\n\n");
    const AccelConfig edge = edge_accel();
    TextTable table({"operator", "config", "Op.Int.", "attainable",
                     "bound"});
    auto add = [&](const std::string& name, const std::string& cfg,
                   double intensity) {
        const RooflinePoint p = roofline_point(edge, intensity, false);
        table.add_row({name, cfg, fmt(intensity, 2),
                       fmt(p.attainable_macs_s / edge.peak_macs_per_sec(),
                           3),
                       p.compute_bound ? "compute" : "memory-BW"});
    };
    add("CONV 3x3", "256ch, 56x56, b=1",
        conv_op_intensity(1, 256, 256, 56 * 56, 3, 2));
    add("FC", "1024x1024, b=1", fc_op_intensity(1, 1024, 1024, 2));
    add("FC", "1024x1024, b=64", fc_op_intensity(64, 1024, 1024, 2));
    add("L-A", "H=16 D=1024 N=512",
        attention_op_intensity(1, 16, 512, 64, 2));
    add("L-A", "H=16 D=1024 N=64K",
        attention_op_intensity(1, 16, 65536, 64, 2));
    table.print(std::cout);
}

void
print_batch_sweep()
{
    std::printf("\n(b)(d) Batch-size impact: FC intensity rises with "
                "batch; L-A does not move:\n\n");
    TextTable table({"batch", "FC Op.Int.", "L-A Op.Int."});
    auto csv = open_csv("fig2_batch.csv", {"batch", "fc", "la"});
    for (std::uint64_t b : {1u, 4u, 16u, 64u, 256u, 1024u}) {
        const double fc = fc_op_intensity(b, 1024, 1024, 2);
        const double la = attention_op_intensity(b, 16, 4096, 64, 2);
        table.add_row({std::to_string(b), fmt(fc, 2), fmt(la, 2)});
        if (csv) {
            csv->add_row({std::to_string(b), fmt(fc, 4), fmt(la, 4)});
        }
    }
    table.print(std::cout);
}

void
print_staging_effect()
{
    std::printf("\n(c) Staging data on-chip raises the bandwidth roof "
                "(edge: 50GB/s off-chip vs 1TB/s on-chip):\n\n");
    const AccelConfig edge = edge_accel();
    TextTable table({"Op.Int.", "off-chip roof (frac of peak)",
                     "on-chip roof (frac of peak)"});
    for (double intensity : {0.5, 2.0, 8.0, 32.0}) {
        const RooflinePoint off = roofline_point(edge, intensity, false);
        const RooflinePoint on = roofline_point(edge, intensity, true);
        table.add_row({fmt(intensity, 1),
                       fmt(off.attainable_macs_s /
                               edge.peak_macs_per_sec(), 3),
                       fmt(on.attainable_macs_s /
                               edge.peak_macs_per_sec(), 3)});
    }
    table.print(std::cout);
    std::printf("\nThe catch (Fig 2(d)): exploiting the on-chip roof "
                "requires the live footprint to fit the scratchpad —\n"
                "which for L/A grows as O(N^2) unless FLAT's fused "
                "row-granularity tiling is used.\n");
}

} // namespace

int
main()
{
    banner("Figure 2 — rooflines and operational intensity",
           "Why batching rescues FC but not the attention operators");
    print_intensity_table();
    print_batch_sweep();
    print_staging_effect();
    return 0;
}

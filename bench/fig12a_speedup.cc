/**
 * @file
 * Reproduces Figure 12(a): model-level speedup and energy-consumption
 * ratio of ATTACC over FlexAccel-M (left) and over FlexAccel (right)
 * for the five workloads at N = 512..256K, edge and cloud.
 */
#include "bench_util.h"

using namespace flat;
using namespace flat::bench;

namespace {

struct Ratios {
    double speedup_vs_flexm = 0.0;
    double speedup_vs_flex = 0.0;
    double energy_vs_flexm = 0.0;
    double energy_vs_flex = 0.0;
};

Ratios
evaluate(const AccelConfig& platform, const ModelConfig& model,
         std::uint64_t n)
{
    SimOptions options;
    options.quick = true;
    const Simulator sim(platform);
    const Workload w = make_workload(model, kBatch, n);
    const ScopeReport attacc = sim.run(
        w, Scope::kModel, AcceleratorSpec::parse("attacc"), options);
    const ScopeReport flexm = sim.run(
        w, Scope::kModel, AcceleratorSpec::parse("flexaccel-m"), options);
    const ScopeReport flex = sim.run(
        w, Scope::kModel, AcceleratorSpec::parse("flexaccel"), options);
    Ratios r;
    r.speedup_vs_flexm = flexm.cycles / attacc.cycles;
    r.speedup_vs_flex = flex.cycles / attacc.cycles;
    r.energy_vs_flexm = attacc.energy_j / flexm.energy_j;
    r.energy_vs_flex = attacc.energy_j / flex.energy_j;
    return r;
}

void
platform_matrix(const char* title, const AccelConfig& platform,
                CsvWriter* csv, double* avg_speedup_flex,
                double* avg_energy_flex)
{
    const std::vector<std::uint64_t> seqs = {512, 4096, 16384, 65536,
                                             262144};
    std::printf("\n%s — ATTACC over FlexAccel-M | FlexAccel "
                "(speedup; energy ratio)\n\n",
                title);
    std::vector<std::string> header{"model"};
    for (std::uint64_t n : seqs) {
        header.push_back(n >= 1024 ? strprintf("%lluK",
                                               static_cast<unsigned long
                                                           long>(n /
                                                                 1024))
                                   : std::to_string(n));
    }
    TextTable speed(header);
    TextTable energy(header);
    double sum_sp_m = 0.0, sum_sp_f = 0.0;
    double sum_en_m = 0.0, sum_en_f = 0.0;
    std::size_t count = 0;

    for (const ModelConfig& model : model_zoo()) {
        std::vector<std::string> sp_row{model.name};
        std::vector<std::string> en_row{model.name};
        for (std::uint64_t n : seqs) {
            const Ratios r = evaluate(platform, model, n);
            sp_row.push_back(fmt_x(r.speedup_vs_flexm) + " | " +
                             fmt_x(r.speedup_vs_flex));
            en_row.push_back(fmt(r.energy_vs_flexm, 2) + " | " +
                             fmt(r.energy_vs_flex, 2));
            sum_sp_m += r.speedup_vs_flexm;
            sum_sp_f += r.speedup_vs_flex;
            sum_en_m += r.energy_vs_flexm;
            sum_en_f += r.energy_vs_flex;
            ++count;
            if (csv != nullptr) {
                csv->add_row({platform.name, model.name,
                              std::to_string(n),
                              fmt(r.speedup_vs_flexm, 3),
                              fmt(r.speedup_vs_flex, 3),
                              fmt(r.energy_vs_flexm, 3),
                              fmt(r.energy_vs_flex, 3)});
            }
        }
        speed.add_row(sp_row);
        energy.add_row(en_row);
    }
    std::printf("Speedup (higher is better):\n");
    speed.print(std::cout);
    std::printf("\nEnergy-consumption ratio (lower is better):\n");
    energy.print(std::cout);
    std::printf("\nAverages: speedup %.2fx (vs FlexAccel-M), %.2fx (vs "
                "FlexAccel); energy ratio %.2f / %.2f\n",
                sum_sp_m / count, sum_sp_f / count, sum_en_m / count,
                sum_en_f / count);
    *avg_speedup_flex = sum_sp_f / count;
    *avg_energy_flex = sum_en_f / count;
}

} // namespace

int
main()
{
    banner("Figure 12(a) — ATTACC speedup & energy vs the baselines",
           "Model-wise, batch 64; paper averages: edge 2.40x/1.75x "
           "speedup, 0.39/0.56 energy; cloud 2.57x/1.65x, 0.28/0.45");

    auto csv = open_csv("fig12a.csv",
                        {"platform", "model", "seq", "speedup_vs_flexm",
                         "speedup_vs_flex", "energy_vs_flexm",
                         "energy_vs_flex"});
    CsvWriter* csv_ptr = csv ? &*csv : nullptr;

    double edge_speedup = 0.0, edge_energy = 0.0;
    double cloud_speedup = 0.0, cloud_energy = 0.0;
    platform_matrix("Edge", edge_accel(), csv_ptr, &edge_speedup,
                    &edge_energy);
    platform_matrix("Cloud", cloud_accel(), csv_ptr, &cloud_speedup,
                    &cloud_energy);

    std::printf("\nHeadline check (paper abstract: 1.94x/1.76x speedup, "
                "49%%/42%% energy cut):\n"
                "  this model: edge %.2fx speedup / %.0f%% energy cut; "
                "cloud %.2fx / %.0f%%\n",
                edge_speedup, 100.0 * (1.0 - edge_energy), cloud_speedup,
                100.0 * (1.0 - cloud_energy));
    return 0;
}

/**
 * @file
 * Contention microbenchmark for the two-level evaluation cache
 * (costmodel/eval_cache.h): raw tile_menu lookups/s at 1, 8 and 32
 * threads under three regimes,
 *
 *   - hot-hit: every thread cycles over one small pinned key set, so
 *     after warm-up every lookup is served by the lock-free
 *     thread-local L1 front-end — the regime a search slice lives in
 *     when it re-asks for the same menu per stage-flag/loop-order
 *     combination. This leg is the front-end's scaling proof: no
 *     shard mutex, no shared cache line, throughput should track the
 *     thread count up to the core count;
 *   - cold-miss: every lookup uses a key nobody has seen (per-thread
 *     disjoint shape ranges), so every lookup computes, takes a shard
 *     lock and inserts — the worst case for the mutex shards;
 *   - mixed: 9 hot lookups per 1 cold one, the steady state of a broad
 *     sweep that keeps revisiting known shapes while exploring new
 *     ones.
 *
 * The menu compute callback is deliberately trivial (one default
 * tile), so the numbers measure cache mechanics — key packing, L1
 * probe, shard mutex, insert — not menu construction.
 *
 * Emits BENCH_cache.json (headline for tools/bench_compare.py:
 * mixed.t8.lookups_per_sec). `ctest -L perf` runs a small-iteration
 * smoke of this binary.
 *
 * Usage: cache_contention [--iters N] [--out FILE]
 *   --iters N   lookups per thread per regime (default 200000)
 */
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "costmodel/eval_cache.h"

using namespace flat;
using namespace flat::bench;

namespace {

/** Restores the cache's enabled flag on every exit path. */
struct CacheEnabledGuard {
    bool saved = EvalCache::enabled();
    ~CacheEnabledGuard() { EvalCache::set_enabled(saved); }
};

/** Thread counts the issue tracks: serial, typical, oversubscribed. */
constexpr unsigned kThreadCounts[] = {1, 8, 32};

/** Pinned key-set size for the hot regime; comfortably inside the
 *  direct-mapped L1 (EvalCache::kL1Slots) so steady state is all
 *  L1 hits. */
constexpr std::uint64_t kHotShapes = 64;

/** One timed measurement: aggregate lookups/s plus the cache's view. */
struct Measurement {
    std::uint64_t lookups = 0;
    double seconds = 0.0;
    CacheStats stats;

    double
    lookups_per_sec() const
    {
        return seconds > 0.0 ? static_cast<double>(lookups) / seconds
                             : 0.0;
    }
};

/** A distinct, never-colliding cache key per @p index: the key covers
 *  the (m, k, n) shape, so varying m/k/n varies the key. */
GemmShape
shape_for(std::uint64_t index)
{
    GemmShape shape;
    shape.m = 64 + (index % 1024) * 16;
    shape.k = 64 + ((index / 1024) % 1024) * 16;
    shape.n = 64 + (index / (1024 * 1024)) * 16;
    return shape;
}

/** One tile_menu lookup for @p index's shape; the compute callback is
 *  trivial so a miss costs (almost) only the insert. */
void
lookup(const AccelConfig& accel, const std::vector<double>& fractions,
       std::uint64_t index)
{
    const GemmShape shape = shape_for(index);
    (void)EvalCache::instance().tile_menu(
        accel, shape, fractions, Stationarity::kOutputStationary, [&] {
            return std::vector<L2Tile>{L2Tile{16, 16, 16}};
        });
}

/**
 * Runs @p iters lookups on each of @p threads threads; thread t's i-th
 * key index comes from @p key_of (t, i). Wall clock covers the whole
 * fork/join (thread startup is amortized by the iteration count).
 */
template <typename KeyOf>
Measurement
run_regime(const AccelConfig& accel, unsigned threads,
           std::uint64_t iters, const KeyOf& key_of)
{
    const std::vector<double> fractions = {0.25, 0.25, 0.5};
    EvalCache::instance().reset_stats();
    Measurement m;
    const ScopedTimer timer;
    if (threads <= 1) {
        for (std::uint64_t i = 0; i < iters; ++i) {
            lookup(accel, fractions, key_of(0, i));
        }
    } else {
        std::vector<std::thread> workers;
        workers.reserve(threads);
        for (unsigned t = 0; t < threads; ++t) {
            workers.emplace_back([&, t] {
                for (std::uint64_t i = 0; i < iters; ++i) {
                    lookup(accel, fractions, key_of(t, i));
                }
            });
        }
        for (std::thread& worker : workers) {
            worker.join();
        }
    }
    m.seconds = timer.seconds();
    m.lookups = static_cast<std::uint64_t>(threads) * iters;
    m.stats = EvalCache::instance().stats();
    return m;
}

void
print_row(const std::string& regime, unsigned threads,
          const Measurement& m)
{
    std::printf("%-6s t=%-3u %12.0f lookups/s  (hit rate %5.1f%%, "
                "L1 share %5.1f%%)\n",
                regime.c_str(), threads, m.lookups_per_sec(),
                100.0 * m.stats.hit_rate(),
                m.stats.hits > 0
                    ? 100.0 * static_cast<double>(m.stats.l1_hits) /
                          static_cast<double>(m.stats.hits)
                    : 0.0);
}

void
emit_measurement(JsonWriter& json, unsigned threads,
                 const Measurement& m)
{
    json.key("t" + std::to_string(threads));
    json.begin_object();
    json.field("lookups", m.lookups);
    json.field("seconds", m.seconds);
    json.field("lookups_per_sec", m.lookups_per_sec());
    json.field("hit_rate", m.stats.hit_rate());
    json.field("hits", m.stats.hits);
    json.field("l1_hits", m.stats.l1_hits);
    json.field("misses", m.stats.misses);
    json.end_object();
}

} // namespace

int
main(int argc, char** argv)
{
    banner("Eval-cache contention — lookups/s at 1/8/32 threads",
           "hot-hit (thread-local L1), cold-miss (shard inserts), "
           "mixed 9:1");

    std::uint64_t iters = 200000;
    std::string out_path = "BENCH_cache.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
            const long long parsed = std::atoll(argv[++i]);
            if (parsed > 0) {
                iters = static_cast<std::uint64_t>(parsed);
            }
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        }
    }
    std::printf("%llu lookups per thread per regime\n\n",
                static_cast<unsigned long long>(iters));

    const AccelConfig accel = edge_accel();
    const std::vector<double> fractions = {0.25, 0.25, 0.5};

    CacheEnabledGuard guard;
    EvalCache::set_enabled(true);

    // Disjoint key ranges: the cold regime must never touch a key any
    // other regime (or thread, or repeat of the same regime at another
    // thread count) has inserted. The hot set lives in [0, kHotShapes);
    // cold keys are handed out from a monotonically growing base.
    std::uint64_t cold_base = kHotShapes;

    JsonWriter json;
    json.begin_object();
    json.field("bench", "cache_contention");
    json.field("iters_per_thread", iters);

    Measurement mixed_t8; // headline source
    for (const char* regime : {"hot", "cold", "mixed"}) {
        json.key(regime);
        json.begin_object();
        for (const unsigned threads : kThreadCounts) {
            EvalCache::instance().clear();
            Measurement m;
            if (std::strcmp(regime, "hot") == 0) {
                // Warm the shards (thread-local L1s refill on first
                // touch per thread — that IS the measured behavior).
                for (std::uint64_t i = 0; i < kHotShapes; ++i) {
                    lookup(accel, fractions, i);
                }
                m = run_regime(accel, threads, iters,
                               [](unsigned, std::uint64_t i) {
                                   return i % kHotShapes;
                               });
            } else if (std::strcmp(regime, "cold") == 0) {
                const std::uint64_t base = cold_base;
                m = run_regime(accel, threads, iters,
                               [base, iters](unsigned t,
                                             std::uint64_t i) {
                                   return base + t * iters + i;
                               });
                cold_base += static_cast<std::uint64_t>(threads) * iters;
            } else {
                // 9 hot : 1 cold, deterministic interleave.
                const std::uint64_t base = cold_base;
                m = run_regime(accel, threads, iters,
                               [base, iters](unsigned t,
                                             std::uint64_t i) {
                                   if (i % 10 == 9) {
                                       return base + t * iters + i;
                                   }
                                   return i % kHotShapes;
                               });
                cold_base += static_cast<std::uint64_t>(threads) * iters;
                if (threads == 8) {
                    mixed_t8 = m;
                }
            }
            print_row(regime, threads, m);
            emit_measurement(json, threads, m);
        }
        json.end_object();
        std::printf("\n");
    }

    json.field("headline_lookups_per_sec",
               mixed_t8.lookups_per_sec());
    json.end_object();

    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    out << json.str() << '\n';
    out.close();
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}

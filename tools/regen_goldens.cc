/**
 * @file
 * Golden-trace regeneration tool: writes the --trace-json bytes of
 * every catalog configuration (src/core/goldens.cc) into
 * tests/goldens/<id>.json. Run it after an INTENTIONAL model change,
 * review the diff, and commit the result; `ctest -L golden` pins the
 * files byte-for-byte (tests/goldens/README.md).
 *
 * Usage: regen_goldens [--check] [output-dir]
 * The default output directory is the source tree's tests/goldens/
 * (baked in at configure time via FLAT_GOLDEN_DIR).
 *
 * With --check nothing is written: every golden is recomputed and
 * compared byte-for-byte against the file on disk; stale or missing
 * files are listed and the exit code is 1. This is the CI-friendly
 * "are the committed goldens current?" probe.
 */
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/diagnostics.h"
#include "core/goldens.h"

int
main(int argc, char** argv)
{
    using namespace flat;
    try {
        std::string dir =
#ifdef FLAT_GOLDEN_DIR
            FLAT_GOLDEN_DIR;
#else
            "tests/goldens";
#endif
        bool check = false;
        int positional = 0;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--check") {
                check = true;
            } else if (!arg.empty() && arg[0] == '-') {
                throw UsageError(
                    "usage: regen_goldens [--check] [output-dir]");
            } else {
                if (++positional > 1) {
                    throw UsageError(
                        "usage: regen_goldens [--check] [output-dir]");
                }
                dir = arg;
            }
        }

        std::size_t stale = 0;
        for (const GoldenConfig& config : golden_configs()) {
            const std::string path = dir + "/" + config.id + ".json";
            const std::string text = golden_trace_json(config) + '\n';
            if (check) {
                std::ifstream in(path, std::ios::binary);
                if (!in) {
                    std::printf("MISSING %s\n", path.c_str());
                    ++stale;
                    continue;
                }
                std::ostringstream disk;
                disk << in.rdbuf();
                if (disk.str() != text) {
                    std::printf("STALE   %s\n", path.c_str());
                    ++stale;
                } else {
                    std::printf("ok      %s\n", path.c_str());
                }
                continue;
            }
            std::ofstream out(path, std::ios::binary | std::ios::trunc);
            if (!out) {
                FLAT_FAIL("cannot open '" << path << "' for writing");
            }
            out << text;
            out.close();
            if (!out) {
                FLAT_FAIL("write to '" << path << "' failed");
            }
            std::printf("wrote %s (%zu bytes)\n", path.c_str(),
                        text.size());
        }
        if (check) {
            if (stale > 0) {
                std::printf("%zu of %zu goldens stale or missing in %s "
                            "(run regen_goldens to update)\n",
                            stale, golden_configs().size(), dir.c_str());
                return 1;
            }
            std::printf("all %zu goldens current in %s\n",
                        golden_configs().size(), dir.c_str());
            return 0;
        }
        std::printf("regenerated %zu goldens into %s\n",
                    golden_configs().size(), dir.c_str());
        return 0;
    } catch (const std::exception& err) {
        const Diagnostic diag = diagnostic_from_exception(err);
        std::fprintf(stderr, "%s\n", diag.to_string().c_str());
        return exit_code_for(diag.kind);
    }
}

/**
 * @file
 * Golden-trace regeneration tool: writes the --trace-json bytes of
 * every catalog configuration (src/core/goldens.cc) into
 * tests/goldens/<id>.json. Run it after an INTENTIONAL model change,
 * review the diff, and commit the result; `ctest -L golden` pins the
 * files byte-for-byte (tests/goldens/README.md).
 *
 * Usage: regen_goldens [output-dir]
 * The default output directory is the source tree's tests/goldens/
 * (baked in at configure time via FLAT_GOLDEN_DIR).
 */
#include <cstdio>
#include <fstream>
#include <string>

#include "common/diagnostics.h"
#include "core/goldens.h"

int
main(int argc, char** argv)
{
    using namespace flat;
    try {
        std::string dir =
#ifdef FLAT_GOLDEN_DIR
            FLAT_GOLDEN_DIR;
#else
            "tests/goldens";
#endif
        if (argc > 2) {
            throw UsageError("usage: regen_goldens [output-dir]");
        }
        if (argc == 2) {
            dir = argv[1];
        }

        for (const GoldenConfig& config : golden_configs()) {
            const std::string path = dir + "/" + config.id + ".json";
            const std::string text = golden_trace_json(config);
            std::ofstream out(path, std::ios::binary | std::ios::trunc);
            if (!out) {
                FLAT_FAIL("cannot open '" << path << "' for writing");
            }
            out << text << '\n';
            out.close();
            if (!out) {
                FLAT_FAIL("write to '" << path << "' failed");
            }
            std::printf("wrote %s (%zu bytes)\n", path.c_str(),
                        text.size() + 1);
        }
        std::printf("regenerated %zu goldens into %s\n",
                    golden_configs().size(), dir.c_str());
        return 0;
    } catch (const std::exception& err) {
        const Diagnostic diag = diagnostic_from_exception(err);
        std::fprintf(stderr, "%s\n", diag.to_string().c_str());
        return exit_code_for(diag.kind);
    }
}

/**
 * @file
 * flatsim — command-line front end to the FLAT/ATTACC simulator.
 *
 * Examples:
 *   flatsim --model bert --platform edge --policy flat-opt --seq 4096
 *   flatsim --model xlm --platform cloud --accel attacc --scope model \
 *           --seq 65536 --objective energy
 *   flatsim --model t5 --platform edge --policy flat-r64 --buffer 2MiB
 *   flatsim --list
 */
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/accel_config_io.h"
#include "arch/scaleout_config.h"
#include "common/cancellation.h"
#include "common/diagnostics.h"
#include "common/fault_injection.h"
#include "common/json.h"
#include "common/run_journal.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table.h"
#include "common/units.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "dse/block_search.h"
#include "costmodel/eval_cache.h"
#include "costmodel/execution_style.h"
#include "costmodel/trace.h"
#include "scaleout/scaleout_search.h"
#include "serving/serving.h"
#include "workload/model_config.h"

namespace {

using namespace flat;

void
print_usage()
{
    std::printf(R"(flatsim — FLAT/ATTACC attention dataflow simulator

usage: flatsim [options]
  --model NAME       bert | trxl | flaubert | t5 | xlm      (default bert)
  --platform NAME    edge | cloud                           (default edge)
  --platform-file F  load a custom platform (key = value; see
                     arch/accel_config_io.h for the keys)
  --policy NAME      base | base-{M,B,H} | base-opt |
                     flat-{M,B,H} | flat-R<rows> | flat-opt (default flat-opt)
  --accel NAME       baseaccel | flexaccel-m | flexaccel |
                     attacc-m | attacc-r<rows> | attacc     (overrides --policy)
  --style NAME       execution style(s) for the L-A DSE:
                     baseline | flat | pipelined | flash | all
                     (repeatable or comma-separated; default: the one
                     style --policy/--accel implies)
  --list-styles      list the registered execution styles
  --scope NAME       la | block | model                     (default block)
  --seq N            sequence length                        (default 4096)
  --kv-seq N         key/value sequence length (cross-attention)
  --window W         local (windowed) attention with radius W
  --batch N          batch size                             (default 64)
  --buffer SIZE      override on-chip buffer, e.g. 2MiB
  --sg2 SIZE         add a second-level on-chip buffer, e.g. 64MiB
  --sg2-bw BW        SG2 bandwidth (default 200GB/s)
  --offchip-bw BW    override off-chip bandwidth, e.g. 100GB/s
  --objective NAME   runtime | energy | edp                 (default runtime)
  --search-mode NAME exhaustive | analytic | analytic-verified
                     how the L-A DSE walks its space (default:
                     exhaustive; --serve defaults to analytic).
                     analytic derives each slice's tiles in closed
                     form from the SL/SG footprint and bandwidth
                     bounds, then refines locally through the exact
                     timeline cost; analytic-verified additionally
                     cross-checks the pick against the exhaustive
                     optimum and reports the objective ratio
  --block            search the whole Transformer block jointly:
                     QKV projections, the fused L-A pipeline and the
                     FCs each keep their own heterogeneous mapping
                     under the shared objective; prints the per-layer
                     plan (composes with --search-mode analytic)
  --threads N        DSE worker threads (default: FLAT_THREADS env,
                     else all hardware threads; result is identical
                     for any thread count)
  --no-prune         disable DSE lower-bound pruning (same result,
                     every design point evaluated)
  --batch-width N    lanes per batched DSE evaluation (default 0 =
                     one whole tiles-x-flags block; result is
                     identical for any width)
  --no-eval-cache    disable the process-wide evaluation cache (same
                     result bit for bit, every menu/cost recomputed)
  --cache-stats      append evaluation-cache hit/miss/size counters to
                     the report (table or JSON)
  --serialized-baseline   model the baseline without transfer overlap
  --quick            smaller DSE menus
  --json             emit the report as JSON instead of tables
  --trace            append a per-pass timeline of the picked L-A
                     dataflow (any execution style; totals equal the
                     cost model's cycles exactly)
  --trace-json       emit the per-phase timeline as a JSON document
  --trace-csv FILE   write the per-phase timeline as CSV to FILE
  --list             list models, policies and accelerators
  --help             this text

multi-device scale-out (shards the L-A layer; see src/scaleout/):
  --devices D        number of identical FLAT accelerators (default 1)
  --shard-axis NAME  batch | head | seq | auto               (default auto)
  --topology NAME    ring | tree                             (default ring)
  --link-bw BW       per-link, per-direction bandwidth, e.g. 300GB/s
  --link-latency T   per-hop link latency, e.g. 700ns
  --scaleout NAME    fabric preset: single | pod-ring | pod-tree |
                     edge-mesh (flags above override preset fields)
  --scaleout-file F  load a fabric description (key = value; see
                     arch/scaleout_config.h for the keys)

inference serving (request-level traffic simulator; src/serving/):
  --serve            serve an arrival trace through the continuous-
                     batching scheduler, pricing every prefill/decode
                     step with the cost model, and report p50/p95/p99
                     request latency plus sustained tokens/s
  --arrival KIND     poisson | bursty | replay               (default poisson)
  --arrival-file F   replay trace: `arrival_s,prompt,output` rows
                     ('#' comments); required with --arrival replay
  --rate R           offered load in requests/second         (default 4)
  --serve-requests N requests to generate                    (default 32)
  --serve-seed S     arrival-trace PRNG seed                 (default 1)
  --sched NAME       prefill-first | decode-first | auto     (default
                     prefill-first); auto runs the serving DSE over
                     execution style x batching policy and reports the
                     best combination by tokens/s (ties: lower p99)
  --max-batch N      batch arbitration cap                   (default 8)
  --prompt-tokens N  mean prompt length (+/- 25%% jitter)     (default 512)
  --output-tokens N  generated tokens per request            (default 32)
  --ctx-bucket N     context-length rounding granule for the
                     step-cost memo                          (default 64)
  (--serve composes with --journal/--resume: step costs checkpoint
  under scope "serve" and a resumed report is bit-identical. The
  report is bit-identical at any --threads / --batch-width too.)

batch sweeps (fault-isolated; see core/sweep.h for the spec syntax):
  --sweep FILE       evaluate the cross product described by FILE; a
                     failing point is recorded as a diagnostic and the
                     sweep keeps going
  --deadline MS      per-point wall-clock deadline (0 = none); enforced
                     preemptively inside the DSE loops
  --keep-going       continue past failed points (the default)
  --fail-fast        stop scheduling new points after the first failure
  --sweep-csv FILE   also write per-point results as CSV
  --retries N        retry a point failing with a TRANSIENT error up to
                     N extra times (sweep mode; default 0)
  --retry-backoff MS backoff before retry k: MS * 2^(k-1) milliseconds,
                     deterministic, no jitter (default 0)
  --inject-fault SITE[:SEED][:ACTION[=N]]
                     arm a fault probe (repeatable); ACTION is one of
                     error | internal | oom | delay[=MS] |
                     transient[=N] | crash. In a sweep, SEED is the
                     poisoned point index.

long runs (crash-safe checkpoints; see common/run_journal.h):
  --journal FILE     checkpoint completed DSE slices and sweep points
                     to a fresh append-only JSONL journal at FILE
  --resume FILE      resume from an earlier journal: completed work is
                     restored instead of re-evaluated, new work is
                     appended, and the final output is bit-identical to
                     an uninterrupted run; a journal written by a
                     different configuration is rejected as stale

signals: the first SIGINT/SIGTERM drains gracefully (running work
finishes, the journal is flushed, partial results are emitted, exit
code 5); a second signal hard-exits with 128+signo. SIGPIPE is
ignored: when the output pipe closes early (e.g. | head) the report
is truncated but the exit code still reflects the run.

exit codes: 0 success, 1 config error, 2 usage, 3 internal error,
            4 sweep completed with failed points, 5 cancelled
            (signal drain or preemptive deadline)
on error, stderr carries a human-readable line followed by one
machine-readable JSON diagnostic record
)");
}

void
print_catalog()
{
    std::printf("models:\n");
    for (const ModelConfig& m : model_zoo()) {
        std::printf("  %-9s blocks=%-3u D=%-5u H=%-3u FF=%u\n",
                    m.name.c_str(), m.num_blocks, m.hidden_dim,
                    m.num_heads, m.ff_dim);
    }
    std::printf("\ndataflow policies (Fig. 7b): Base, Base-M/B/H, "
                "Base-opt, FLAT-M/B/H, FLAT-R<rows>, FLAT-opt\n");
    std::printf("accelerators (Fig. 7c): BaseAccel, FlexAccel-M, "
                "FlexAccel, ATTACC-M, ATTACC-R<rows>, ATTACC\n");
    std::printf("\nplatforms (Fig. 7a):\n");
    for (const AccelConfig& a : {edge_accel(), cloud_accel()}) {
        std::printf("  %-6s %ux%u PEs, %s SG, %s on-chip, %s off-chip\n",
                    a.name.c_str(), a.pe_rows, a.pe_cols,
                    format_bytes(a.sg_bytes).c_str(),
                    format_bandwidth(a.onchip_bw).c_str(),
                    format_bandwidth(a.offchip_bw).c_str());
    }
}

void
print_styles()
{
    std::printf("execution styles (--style; the L-A DSE axis):\n");
    for (const ExecutionStyle* style : execution_styles()) {
        std::printf("  %-10s %s\n", style->id(), style->summary());
    }
    std::printf("\n'all' enumerates every registered style in one "
                "search; the flag is repeatable and accepts\n"
                "comma-separated lists (e.g. --style flat,flash)\n");
}

/** Upper bound for dimension-like flags (seq, batch, window). */
constexpr std::uint64_t kMaxDim = 1ull << 32;

/** --cache-stats table epilogue (shared by run and sweep modes). */
void
print_cache_stats(std::ostream& os)
{
    const CacheStats stats = EvalCache::instance().stats();
    os << "\nevaluation cache (process-wide):\n";
    TextTable table({"metric", "value"});
    table.add_row({"enabled", EvalCache::enabled() ? "yes" : "no"});
    table.add_row({"hits", std::to_string(stats.hits)});
    table.add_row({"L1 hits", std::to_string(stats.l1_hits)});
    table.add_row({"misses", std::to_string(stats.misses)});
    table.add_row({"hit rate", strprintf("%.3f", stats.hit_rate())});
    table.add_row({"entries", std::to_string(stats.entries)});
    table.add_row({"bytes", format_bytes(stats.bytes)});
    table.add_row({"evictions", std::to_string(stats.evictions)});
    table.print(os);
}

/** --cache-stats JSON object, emitted under the key "eval_cache". */
void
write_cache_stats(JsonWriter& json)
{
    const CacheStats stats = EvalCache::instance().stats();
    json.key("eval_cache");
    json.begin_object();
    json.field("enabled", EvalCache::enabled());
    json.field("hits", stats.hits);
    json.field("l1_hits", stats.l1_hits);
    json.field("misses", stats.misses);
    json.field("hit_rate", stats.hit_rate());
    json.field("entries", stats.entries);
    json.field("bytes", stats.bytes);
    json.field("evictions", stats.evictions);
    json.end_object();
}

struct Args {
    std::string model = "bert";
    std::string platform = "edge";
    std::string platform_file;
    std::string policy = "flat-opt";
    std::string accel;
    std::vector<std::string> styles;
    std::string scope = "block";
    std::uint64_t seq = 4096;
    std::uint64_t kv_seq = 0;
    std::uint64_t window = 0;
    std::uint64_t batch = 64;
    std::string buffer;
    std::string sg2;
    std::string sg2_bw = "200GB/s";
    std::string offchip_bw;
    std::string objective = "runtime";
    std::string search_mode; ///< "" = mode default (run: exhaustive,
                             ///< serve: analytic)
    bool block = false;      ///< --block: joint block-chain DSE
    std::uint64_t threads = 0;
    std::uint64_t batch_width = 0;
    bool no_prune = false;
    bool no_eval_cache = false;
    bool cache_stats = false;
    bool serialized_baseline = false;
    bool quick = false;
    bool json = false;
    bool trace = false;
    bool trace_json = false;
    std::string trace_csv;

    std::uint64_t devices = 0; // 0 = not set, keep the fabric default
    std::string shard_axis;
    std::string topology;
    std::string link_bw;
    std::string link_latency;
    std::string scaleout_preset;
    std::string scaleout_file;

    std::string sweep_file;
    std::string sweep_csv;
    std::uint64_t deadline_ms = 0;
    bool fail_fast = false;
    std::vector<std::string> inject_faults;

    std::string journal_file; ///< --journal: fresh checkpoint journal
    std::string resume_file;  ///< --resume: restore + append
    std::uint64_t retries = 0;
    std::uint64_t retry_backoff_ms = 0;

    bool serve = false;             ///< --serve: traffic-simulator mode
    std::string arrival = "poisson"; ///< poisson | bursty | replay
    std::string arrival_file;        ///< --arrival replay trace
    double rate = 4.0;               ///< offered load, requests/s
    std::uint64_t serve_requests = 32;
    std::uint64_t serve_seed = 1;
    std::string sched = "prefill-first"; ///< + decode-first | auto
    std::uint64_t max_batch = 8;
    std::uint64_t prompt_tokens = 512;
    std::uint64_t output_tokens = 32;
    std::uint64_t ctx_bucket = 64;
};

/**
 * Process-wide cancellation token for the SIGINT/SIGTERM graceful
 * drain; handed to install_signal_cancellation() once the flags are
 * parsed and threaded into every work loop from there.
 */
CancellationToken g_signal_cancel;

/** Opens the checkpoint journal requested by --journal / --resume
 *  (nullptr when neither flag is present). */
std::unique_ptr<RunJournal>
open_journal(const Args& args, const RunJournalHeader& header)
{
    if (!args.resume_file.empty()) {
        return RunJournal::open_resume(args.resume_file, header);
    }
    if (!args.journal_file.empty()) {
        return RunJournal::create(args.journal_file, header);
    }
    return nullptr;
}

/**
 * Parses a numeric flag value strictly: the whole token must be a
 * non-negative integer in [min, max]. Anything else (letters, trailing
 * garbage, a sign, overflow) is a usage error, exit code 2.
 */
std::uint64_t
parse_u64_flag(const std::string& flag, const std::string& text,
               std::uint64_t min = 0,
               std::uint64_t max = std::uint64_t(-1))
{
    std::size_t pos = 0;
    unsigned long long value = 0;
    if (text.empty() || text[0] == '-' || text[0] == '+') {
        throw UsageError(flag + " expects a non-negative integer, got '" +
                         text + "'");
    }
    try {
        value = std::stoull(text, &pos);
    } catch (const std::exception&) {
        pos = 0;
    }
    if (pos == 0 || pos != text.size()) {
        throw UsageError(flag + " expects a non-negative integer, got '" +
                         text + "'");
    }
    if (value < min || value > max) {
        throw UsageError(flag + " value " + text + " is out of range [" +
                         std::to_string(min) + ", " +
                         std::to_string(max) + "]");
    }
    return value;
}

/**
 * Parses a positive decimal flag value (e.g. --rate): the whole token
 * must parse and land in (0, max]. Anything else is a usage error.
 */
double
parse_positive_double_flag(const std::string& flag,
                           const std::string& text, double max = 1e12)
{
    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(text, &pos);
    } catch (const std::exception&) {
        pos = 0;
    }
    if (pos == 0 || pos != text.size() || !(value > 0.0) ||
        value > max) {
        throw UsageError(flag + " expects a positive number, got '" +
                         text + "'");
    }
    return value;
}

/**
 * Builds the scale-out fabric: preset / file base first, then
 * individual flag overrides. Bad flag VALUES are usage errors (exit
 * 2); an inconsistent resulting fabric is a config error (exit 1).
 */
ScaleOutConfig
fabric_from_args(const Args& args)
{
    ScaleOutConfig fabric;
    if (!args.scaleout_preset.empty()) {
        try {
            fabric = scaleout_preset(args.scaleout_preset);
        } catch (const InternalError&) {
            throw;
        } catch (const Error& e) {
            throw UsageError(e.what());
        }
    }
    // File CONTENT problems are config errors, like --platform-file.
    if (!args.scaleout_file.empty()) {
        fabric = scaleout_from_config_file(args.scaleout_file, fabric);
    }
    try {
        if (args.devices != 0) {
            fabric.devices = static_cast<std::uint32_t>(args.devices);
        }
        if (!args.shard_axis.empty()) {
            fabric.axis = parse_shard_axis(args.shard_axis);
        }
        if (!args.topology.empty()) {
            fabric.topology = parse_topology(args.topology);
        }
        if (!args.link_bw.empty()) {
            fabric.link_bw = parse_bandwidth(args.link_bw);
        }
        if (!args.link_latency.empty()) {
            fabric.link_latency_s = parse_time(args.link_latency);
        }
    } catch (const InternalError&) {
        throw;
    } catch (const Error& e) {
        // Only flag-VALUE parsing runs inside this try: misuse.
        throw UsageError(e.what());
    }
    fabric.validate();
    return fabric;
}

/** Builds the platform from --platform/--platform-file plus the
 *  buffer/bandwidth override flags (shared by every mode). */
AccelConfig
accel_from_args(const Args& args)
{
    FLAT_CHECK(to_lower(args.platform) == "cloud" ||
                   to_lower(args.platform) == "edge",
               "unknown platform '" << args.platform
                                    << "' (edge | cloud)");
    AccelConfig accel = (to_lower(args.platform) == "cloud")
                            ? cloud_accel()
                            : edge_accel();
    if (!args.platform_file.empty()) {
        accel = accel_from_config_file(args.platform_file, accel);
    }
    if (!args.buffer.empty()) {
        accel.sg_bytes = parse_bytes(args.buffer);
    }
    if (!args.sg2.empty()) {
        accel.sg2_bytes = parse_bytes(args.sg2);
        accel.sg2_bw = parse_bandwidth(args.sg2_bw);
    }
    if (!args.offchip_bw.empty()) {
        accel.offchip_bw = parse_bandwidth(args.offchip_bw);
    }
    return accel;
}

/** Builds the workload from --model/--batch/--seq/--kv-seq/--window
 *  (shared by the single-run and block modes). */
Workload
workload_from_args(const Args& args, const ModelConfig& model)
{
    FLAT_CHECK(args.kv_seq == 0 || args.window == 0,
               "--kv-seq and --window are mutually exclusive");
    if (args.kv_seq != 0) {
        return make_cross_attention_workload(model, args.batch,
                                             args.seq, args.kv_seq);
    }
    if (args.window != 0) {
        return make_local_attention_workload(model, args.batch,
                                             args.seq, args.window);
    }
    return make_workload(model, args.batch, args.seq);
}

/** The L-A search mode a mode's flags resolve to. */
SearchMode
search_mode_from_args(const Args& args, SearchMode fallback)
{
    return args.search_mode.empty() ? fallback
                                    : parse_search_mode(args.search_mode);
}

int
run(const Args& args)
{
    const ModelConfig model = model_by_name(args.model);
    const AccelConfig accel = accel_from_args(args);
    const Workload workload = workload_from_args(args, model);
    const Scope scope = parse_scope(args.scope);

    SimOptions options;
    options.objective = parse_objective(args.objective);
    options.search_mode =
        search_mode_from_args(args, SearchMode::kExhaustive);
    options.quick = args.quick;
    options.threads = static_cast<unsigned>(args.threads);
    options.prune = !args.no_prune;
    options.batch_width = static_cast<std::size_t>(args.batch_width);
    options.baseline_overlap = args.serialized_baseline
                                   ? BaselineOverlap::kSerialized
                                   : BaselineOverlap::kFull;
    options.styles = args.styles;

    // Journal identity of a single-run DSE: a coarse hash over the
    // result-shaping CLI surface. The fine-grained staleness guard is
    // the per-search scope key search_attention journals under (a hash
    // of accelerator + dims + search options) — a record from a
    // different space simply never matches at restore time. The search
    // mode is folded in only when non-exhaustive, so pre-existing
    // exhaustive journals keep their historical hash.
    RunJournalHeader journal_header;
    journal_header.mode = "run";
    std::string space_text = strprintf(
        "run|%s|%llu|%llu|%.17g|%s|%llu|%llu|%llu|%llu|%s|%s|%d|%d|%d|%s",
        accel.name.c_str(),
        static_cast<unsigned long long>(accel.sg_bytes),
        static_cast<unsigned long long>(accel.sg2_bytes),
        accel.offchip_bw, model.name.c_str(),
        static_cast<unsigned long long>(args.batch),
        static_cast<unsigned long long>(args.seq),
        static_cast<unsigned long long>(args.kv_seq),
        static_cast<unsigned long long>(args.window),
        to_string(scope).c_str(),
        (args.accel.empty() ? args.policy : args.accel).c_str(),
        static_cast<int>(options.objective),
        static_cast<int>(options.quick),
        static_cast<int>(options.baseline_overlap),
        join(args.styles, ",").c_str());
    if (options.search_mode != SearchMode::kExhaustive) {
        space_text += strprintf("|mode=%s",
                                to_string(options.search_mode));
    }
    journal_header.space_hash = fnv1a64(space_text);
    const std::unique_ptr<RunJournal> journal =
        open_journal(args, journal_header);
    options.journal = journal.get();
    options.cancel = &g_signal_cancel;

    const Simulator sim(accel);
    const ScopeReport report =
        args.accel.empty()
            ? sim.run(workload, scope, DataflowPolicy::parse(args.policy),
                      options)
            : sim.run(workload, scope,
                      AcceleratorSpec::parse(args.accel), options);

    // Multi-device scale-out of the L-A layer: two-level DSE (axis x
    // devices outer, per-device dataflow inner) plus a D=1 reference
    // point for the speedup row. Single-device runs skip all of this.
    const ScaleOutConfig fabric = fabric_from_args(args);
    ScaleOutSearchResult scaleout;
    ScaleOutSearchResult scaleout_ref;
    if (!fabric.single_device()) {
        const AttentionDims dims = AttentionDims::from_workload(workload);
        ScaleOutSearchOptions so_options;
        so_options.attention =
            args.accel.empty()
                ? attention_options(DataflowPolicy::parse(args.policy),
                                    options)
                : attention_options(AcceleratorSpec::parse(args.accel),
                                    options);
        FLAT_CHECK(so_options.attention.fused,
                   "scale-out shards the fused FLAT execution; pick a "
                   "flat-* policy or an ATTACC accelerator (got "
                       << report.policy_name << ")");
        so_options.fabric = fabric;
        scaleout = search_scaleout(accel, dims, so_options);
        FLAT_CHECK(scaleout.found,
                   "no feasible sharding of this layer across "
                       << fabric.devices << " devices");
        ScaleOutSearchOptions ref_options = so_options;
        ref_options.device_counts = {1};
        scaleout_ref = search_scaleout(accel, dims, ref_options);
    }

    // Per-phase timeline of the picked L-A dataflow. The search is
    // re-run to recover the winning dataflow; the trace then re-shapes
    // the same evaluated timeline the cost model consumed, so its
    // totals equal the report's (unscaled) L-A cycles exactly. With
    // --devices > 1 the trace shows ONE device's sharded timeline,
    // collective phases included.
    ExecutionTrace trace;
    const bool want_trace =
        args.trace || args.trace_json || !args.trace_csv.empty();
    if (want_trace && !fabric.single_device()) {
        const ScaleOutCost& cost = scaleout.best.cost;
        trace = trace_from_timeline(
            cost.timeline,
            std::string("scaleout-") + to_string(cost.axis),
            scaleout.best.dataflow.tag(),
            static_cast<double>(
                cross_loop_extent(scaleout.best.dataflow.cross,
                                  cost.device_dims.batch,
                                  cost.device_dims.heads,
                                  cost.device_dims.q_len)
                    .passes));
    } else if (want_trace) {
        const AttentionDims dims = AttentionDims::from_workload(workload);
        const AttentionSearchOptions la_options =
            args.accel.empty()
                ? attention_options(DataflowPolicy::parse(args.policy),
                                    options)
                : attention_options(AcceleratorSpec::parse(args.accel),
                                    options);
        const AttentionSearchResult la =
            search_attention(accel, dims, la_options);
        const ExecutionStyle& style =
            la.best.style != nullptr
                ? *la.best.style
                : default_execution_style(la_options.fused);
        trace = trace_attention(style, accel, dims, la.best.dataflow,
                                la_options.baseline_overlap);
    }
    if (want_trace) {
        if (!args.trace_csv.empty()) {
            std::FILE* file = std::fopen(args.trace_csv.c_str(), "w");
            FLAT_CHECK(file != nullptr, "cannot write trace CSV '"
                                            << args.trace_csv << "'");
            std::fputs(trace.to_csv().c_str(), file);
            std::fclose(file);
        }
    }

    if (args.json) {
        JsonWriter json;
        json.begin_object();
        json.field("model", model.name);
        json.field("platform", accel.name);
        json.field("policy", report.policy_name);
        json.field("picked_dataflow", report.la_dataflow_tag);
        json.field("scope", to_string(scope));
        json.field("batch", static_cast<std::uint64_t>(args.batch));
        json.field("seq_len", static_cast<std::uint64_t>(args.seq));
        json.field("utilization", report.util());
        json.field("runtime_s", report.runtime_s);
        json.field("cycles", report.cycles);
        json.field("ideal_cycles", report.ideal_cycles);
        json.field("energy_j", report.energy_j);
        json.field("dram_bytes", report.traffic.total_dram());
        json.field("sg_bytes", report.traffic.total_sg());
        json.field("la_footprint_bytes",
                   static_cast<std::uint64_t>(report.la_footprint_bytes));
        json.field("la_resident_fraction", report.la_resident_fraction);
        json.field("la_points_evaluated",
                   static_cast<std::uint64_t>(report.la_points_evaluated));
        json.field("la_points_pruned",
                   static_cast<std::uint64_t>(report.la_points_pruned));
        if (options.search_mode != SearchMode::kExhaustive) {
            json.field("search_mode", to_string(options.search_mode));
        }
        if (report.la_verified) {
            json.field("la_verified_ratio", report.la_verified_ratio);
        }
        json.key("breakdown_cycles");
        json.begin_object();
        json.field("la", report.breakdown.la_cycles);
        json.field("projection", report.breakdown.proj_cycles);
        json.field("fc", report.breakdown.fc_cycles);
        json.end_object();
        json.field("la_bound_by", report.la_stages.bound_by);
        json.key("la_stage_cycles");
        json.begin_object();
        json.field("prefetch", report.la_stages.prefetch_cycles);
        json.field("logit", report.la_stages.logit_cycles);
        json.field("softmax", report.la_stages.softmax_cycles);
        json.field("attend", report.la_stages.attend_cycles);
        json.field("writeback", report.la_stages.writeback_cycles);
        json.field("cold_start", report.la_stages.cold_start_cycles);
        json.end_object();
        if (!fabric.single_device()) {
            const ScaleOutSearchPoint& best = scaleout.best;
            const ScaleOutCost& cost = best.cost;
            json.key("scaleout");
            json.begin_object();
            json.field("devices",
                       static_cast<std::uint64_t>(cost.devices));
            json.field("shard_axis", to_string(cost.axis));
            json.field("topology", to_string(fabric.topology));
            json.field("link_bw", fabric.link_bw);
            json.field("link_latency_s", fabric.link_latency_s);
            json.key("device_dims");
            json.begin_object();
            json.field("batch", cost.device_dims.batch);
            json.field("heads", cost.device_dims.heads);
            json.field("q_len", cost.device_dims.q_len);
            json.field("kv_len", cost.device_dims.kv_len);
            json.field("head_dim", cost.device_dims.head_dim);
            json.end_object();
            json.field("device_dataflow", best.dataflow.tag());
            json.field("la_cycles", cost.cycles);
            json.field("la_cycles_single_device",
                       scaleout_ref.best.cost.cycles);
            json.field("speedup",
                       scaleout_ref.best.cost.cycles / cost.cycles);
            json.field("collective_phases",
                       static_cast<std::uint64_t>(cost.collective_phases));
            json.field("exposed_collective_cycles",
                       cost.exposed_collective_cycles);
            json.field("overlapped_link_cycles",
                       cost.overlapped_link_cycles);
            json.field("link_bytes_per_device",
                       cost.link_bytes_per_device);
            json.field("fleet_energy_j", best.total_energy_j);
            json.end_object();
        }
        if (args.cache_stats) {
            write_cache_stats(json);
        }
        json.end_object();
        std::printf("%s\n", json.str().c_str());
        if (args.trace_json) {
            std::printf("%s\n", trace.to_json().c_str());
        }
        return 0;
    }

    std::printf("workload : %s, batch %llu, N=%llu%s (%s scope)\n",
                model.name.c_str(),
                static_cast<unsigned long long>(args.batch),
                static_cast<unsigned long long>(args.seq),
                args.kv_seq != 0
                    ? strprintf(", N_kv=%llu",
                                static_cast<unsigned long long>(
                                    args.kv_seq))
                          .c_str()
                    : "",
                to_string(scope).c_str());
    std::printf("platform : %s (%ux%u PEs, %s SG, %s off-chip)\n",
                accel.name.c_str(), accel.pe_rows, accel.pe_cols,
                format_bytes(accel.sg_bytes).c_str(),
                format_bandwidth(accel.offchip_bw).c_str());
    std::printf("dataflow : %s -> picked %s\n\n",
                report.policy_name.c_str(),
                report.la_dataflow_tag.c_str());

    TextTable table({"metric", "value"});
    table.add_row({"utilization", strprintf("%.3f", report.util())});
    table.add_row({"runtime", format_time(report.runtime_s)});
    table.add_row({"cycles", format_count(report.cycles)});
    table.add_row({"non-stall cycles", format_count(report.ideal_cycles)});
    table.add_row({"energy", strprintf("%.4g J", report.energy_j)});
    table.add_row({"DRAM traffic",
                   format_bytes(static_cast<std::uint64_t>(
                       report.traffic.total_dram()))});
    table.add_row({"on-chip traffic",
                   format_bytes(static_cast<std::uint64_t>(
                       report.traffic.total_sg()))});
    table.add_row({"L-A live footprint",
                   format_bytes(report.la_footprint_bytes)});
    table.add_row({"L-A resident fraction",
                   strprintf("%.2f", report.la_resident_fraction)});
    table.add_row({"L-A DSE points",
                   strprintf("%zu evaluated, %zu pruned",
                             report.la_points_evaluated,
                             report.la_points_pruned)});
    if (report.la_verified) {
        table.add_row({"L-A vs exhaustive",
                       strprintf("objective ratio %.6f",
                                 report.la_verified_ratio)});
    }
    table.print(std::cout);

    std::printf("\nL-A stages (%s-bound; cycles each stage alone "
                "would need):\n",
                report.la_stages.bound_by.c_str());
    TextTable stages({"stage", "cycles"});
    stages.add_row({"prefetch",
                    format_count(report.la_stages.prefetch_cycles)});
    stages.add_row({"logit GEMM",
                    format_count(report.la_stages.logit_cycles)});
    stages.add_row({"softmax",
                    format_count(report.la_stages.softmax_cycles)});
    stages.add_row({"attend GEMM",
                    format_count(report.la_stages.attend_cycles)});
    stages.add_row({"writeback",
                    format_count(report.la_stages.writeback_cycles)});
    stages.add_row({"cold start",
                    format_count(report.la_stages.cold_start_cycles)});
    stages.print(std::cout);

    if (!fabric.single_device()) {
        const ScaleOutSearchPoint& best = scaleout.best;
        const ScaleOutCost& cost = best.cost;
        const double ref_cycles = scaleout_ref.best.cost.cycles;
        const double speedup = ref_cycles / cost.cycles;
        std::printf("\nscale-out (L-A layer): %u devices, %s-sharded, "
                    "%s @ %s per link\n",
                    cost.devices, to_string(cost.axis),
                    to_string(fabric.topology),
                    format_bandwidth(fabric.link_bw).c_str());
        TextTable so_table({"metric", "value"});
        so_table.add_row(
            {"per-device shard",
             strprintf("B=%llu H=%llu N=%llu N_kv=%llu",
                       static_cast<unsigned long long>(
                           cost.device_dims.batch),
                       static_cast<unsigned long long>(
                           cost.device_dims.heads),
                       static_cast<unsigned long long>(
                           cost.device_dims.q_len),
                       static_cast<unsigned long long>(
                           cost.device_dims.kv_len))});
        so_table.add_row({"device dataflow", best.dataflow.tag()});
        so_table.add_row({"L-A cycles (1 device)",
                          format_count(ref_cycles)});
        so_table.add_row({"L-A cycles (sharded)",
                          format_count(cost.cycles)});
        so_table.add_row(
            {"speedup", strprintf("%.2fx (%.0f%% efficiency)", speedup,
                                  100.0 * speedup / cost.devices)});
        so_table.add_row({"collective phases",
                          std::to_string(cost.collective_phases)});
        so_table.add_row({"exposed collective cycles",
                          format_count(cost.exposed_collective_cycles)});
        so_table.add_row({"overlapped link cycles",
                          format_count(cost.overlapped_link_cycles)});
        so_table.add_row(
            {"link traffic / device",
             format_bytes(static_cast<std::uint64_t>(
                 cost.link_bytes_per_device))});
        so_table.add_row({"fleet energy (L-A)",
                          strprintf("%.4g J", best.total_energy_j)});
        so_table.print(std::cout);
    }

    if (args.trace) {
        std::printf("\n%s", trace.render().c_str());
    }
    if (args.trace_json) {
        std::printf("\n%s\n", trace.to_json().c_str());
    }

    if (scope != Scope::kLogitAttend) {
        std::printf("\nlatency breakdown (cycles):\n");
        TextTable breakdown({"category", "cycles", "share"});
        const auto row = [&](const char* name, double cycles) {
            breakdown.add_row({name, format_count(cycles),
                               strprintf("%.1f%%", 100.0 * cycles /
                                                       report.cycles)});
        };
        row("L-A (fused/sequential)", report.breakdown.la_cycles);
        row("Projections (Q/K/V/O)", report.breakdown.proj_cycles);
        row("Feed-forward FCs", report.breakdown.fc_cycles);
        breakdown.print(std::cout);
    }
    if (args.cache_stats) {
        print_cache_stats(std::cout);
    }
    return 0;
}

/** Shared --serve report body (table or JSON object fields). */
void
print_serve_report(const Args& args, const AccelConfig& accel,
                   const ServeReport& report, const char* picked_style)
{
    if (args.json) {
        JsonWriter json;
        json.begin_object();
        json.field("model", report.model);
        json.field("platform", accel.name);
        json.field("policy", report.policy);
        json.field("style", picked_style);
        json.field("sched", report.sched_policy);
        json.field("arrival", args.arrival);
        json.field("max_batch", report.max_batch);
        json.field("offered", report.offered);
        json.field("completed", report.completed);
        json.field("p50_s", report.p50_s);
        json.field("p95_s", report.p95_s);
        json.field("p99_s", report.p99_s);
        json.field("mean_s", report.mean_s);
        json.field("makespan_s", report.makespan_s);
        json.field("tokens_per_s", report.tokens_per_s);
        json.field("prefilled_tokens", report.prefilled_tokens);
        json.field("generated_tokens", report.generated_tokens);
        json.field("prefill_steps", report.prefill_steps);
        json.field("decode_steps", report.decode_steps);
        json.field("cost_lookups", report.cost_lookups);
        json.field("cost_memo_hits", report.cost_memo_hits);
        json.field("cost_journal_hits", report.cost_journal_hits);
        json.field("cancelled", report.cancelled);
        json.key("completion_order");
        json.begin_array();
        for (const std::uint64_t id : report.completion_order) {
            json.value(id);
        }
        json.end_array();
        json.end_object();
        std::printf("%s\n", json.str().c_str());
        return;
    }

    std::printf("serving  : %s on %s, %s arrivals @ %.3g req/s, "
                "%llu requests\n",
                report.model.c_str(), accel.name.c_str(),
                args.arrival.c_str(), args.rate,
                static_cast<unsigned long long>(report.offered));
    std::printf("batching : %s, cap %llu, dataflow %s (style %s)%s\n\n",
                report.sched_policy.c_str(),
                static_cast<unsigned long long>(report.max_batch),
                report.policy.c_str(), picked_style,
                report.cancelled ? " [cancelled: partial report]" : "");

    TextTable table({"metric", "value"});
    table.add_row({"completed",
                   strprintf("%llu / %llu",
                             static_cast<unsigned long long>(
                                 report.completed),
                             static_cast<unsigned long long>(
                                 report.offered))});
    table.add_row({"p50 latency", format_time(report.p50_s)});
    table.add_row({"p95 latency", format_time(report.p95_s)});
    table.add_row({"p99 latency", format_time(report.p99_s)});
    table.add_row({"mean latency", format_time(report.mean_s)});
    table.add_row({"makespan", format_time(report.makespan_s)});
    table.add_row({"tokens/s",
                   strprintf("%.4g", report.tokens_per_s)});
    table.add_row({"prefill steps",
                   std::to_string(report.prefill_steps)});
    table.add_row({"decode steps",
                   std::to_string(report.decode_steps)});
    table.add_row(
        {"step-cost lookups",
         strprintf("%llu (%llu memo, %llu journal hits)",
                   static_cast<unsigned long long>(report.cost_lookups),
                   static_cast<unsigned long long>(
                       report.cost_memo_hits),
                   static_cast<unsigned long long>(
                       report.cost_journal_hits))});
    table.print(std::cout);
}

/** --block excludes the serve/sweep/trace/scale-out surfaces. */
void
throw_if_block_conflicts(const Args& args)
{
    if (args.serve) {
        throw UsageError("--block and --serve are mutually exclusive");
    }
    if (!args.sweep_file.empty()) {
        throw UsageError("--block and --sweep are mutually exclusive");
    }
    if (args.trace || args.trace_json || !args.trace_csv.empty()) {
        throw UsageError("--block has no per-phase trace; drop the "
                         "--trace flags");
    }
    if (args.devices > 1) {
        throw UsageError("--block searches a single device; drop "
                         "--devices");
    }
}

/** The report-facing tag of a block layer's picked mapping. */
std::string
block_layer_tag(const BlockLayerPlan& layer)
{
    if (!layer.attention) {
        return layer.dataflow.tag();
    }
    const std::string prefix =
        layer.la.style != nullptr
            ? std::string(layer.la.style->id()) + ":"
            : std::string();
    return prefix + layer.la.dataflow.tag();
}

int
run_block_mode(const Args& args)
{
    const ModelConfig model = model_by_name(args.model);
    const AccelConfig accel = accel_from_args(args);
    const Workload workload = workload_from_args(args, model);

    SimOptions options;
    options.objective = parse_objective(args.objective);
    options.search_mode =
        search_mode_from_args(args, SearchMode::kExhaustive);
    options.quick = args.quick;
    options.threads = static_cast<unsigned>(args.threads);
    options.prune = !args.no_prune;
    options.batch_width = static_cast<std::size_t>(args.batch_width);
    options.baseline_overlap = args.serialized_baseline
                                   ? BaselineOverlap::kSerialized
                                   : BaselineOverlap::kFull;
    options.styles = args.styles;
    options.cancel = &g_signal_cancel;

    // Per-layer search knobs mirror Simulator::run()'s: a policy keeps
    // the projection/FC sweep fully flexible, an accelerator spec may
    // pin it down.
    BlockSearchOptions block_options;
    if (args.accel.empty()) {
        block_options.attention = attention_options(
            DataflowPolicy::parse(args.policy), options);
        block_options.op.allow_l3 = true;
    } else {
        const AcceleratorSpec spec = AcceleratorSpec::parse(args.accel);
        block_options.attention = attention_options(spec, options);
        block_options.op.allow_l3 = spec.allows_l3();
        if (!spec.flexible()) {
            block_options.op.candidates = fixed_policy_candidates();
            block_options.op.allow_l3 = false;
        }
    }
    block_options.op.objective = options.objective;
    block_options.op.quick = options.quick;
    block_options.op.cancel = options.cancel;

    const BlockSearchResult result =
        search_block(accel, workload, block_options);

    if (args.json) {
        JsonWriter json;
        json.begin_object();
        json.field("model", model.name);
        json.field("platform", accel.name);
        json.field("policy",
                   args.accel.empty() ? args.policy : args.accel);
        json.field("search_mode", to_string(options.search_mode));
        json.key("layers");
        json.begin_array();
        for (const BlockLayerPlan& layer : result.layers) {
            json.begin_object();
            json.field("name", layer.name);
            json.field("kind", layer.attention ? "attention" : "gemm");
            json.field("dataflow", block_layer_tag(layer));
            json.field("cycles", layer.cycles);
            json.field("energy_j", layer.energy_j);
            json.field("evaluated",
                       static_cast<std::uint64_t>(layer.evaluated));
            json.field("pruned",
                       static_cast<std::uint64_t>(layer.pruned));
            json.field("reused", layer.reused);
            json.end_object();
        }
        json.end_array();
        json.field("block_cycles", result.block_cycles);
        json.field("block_energy_j", result.block_energy_j);
        json.field("blocks", result.blocks);
        json.field("model_cycles", result.model_cycles);
        json.field("model_energy_j", result.model_energy_j);
        json.field("evaluated",
                   static_cast<std::uint64_t>(result.evaluated));
        json.field("pruned",
                   static_cast<std::uint64_t>(result.pruned));
        if (args.cache_stats) {
            write_cache_stats(json);
        }
        json.end_object();
        std::printf("%s\n", json.str().c_str());
        return 0;
    }

    std::printf("block DSE: %s, batch %llu, N=%llu on %s "
                "(%s mode, %s objective)\n\n",
                model.name.c_str(),
                static_cast<unsigned long long>(args.batch),
                static_cast<unsigned long long>(args.seq),
                accel.name.c_str(), to_string(options.search_mode),
                args.objective.c_str());
    TextTable table(
        {"layer", "kind", "picked dataflow", "cycles", "energy (J)",
         "evaluated"});
    for (const BlockLayerPlan& layer : result.layers) {
        table.add_row(
            {layer.name, layer.attention ? "attention" : "gemm",
             block_layer_tag(layer), strprintf("%.0f", layer.cycles),
             strprintf("%.4g", layer.energy_j),
             layer.reused
                 ? "(reused)"
                 : strprintf("%llu", static_cast<unsigned long long>(
                                         layer.evaluated))});
    }
    table.add_separator();
    table.add_row({"block", "", "",
                   strprintf("%.0f", result.block_cycles),
                   strprintf("%.4g", result.block_energy_j),
                   strprintf("%llu", static_cast<unsigned long long>(
                                         result.evaluated))});
    table.add_row(
        {strprintf("model (x%llu)",
                   static_cast<unsigned long long>(result.blocks)),
         "", "", strprintf("%.0f", result.model_cycles),
         strprintf("%.4g", result.model_energy_j), ""});
    table.print(std::cout);
    return 0;
}

/** --serve excludes the single-run/sweep-only surfaces. */
void
throw_if_serve_conflicts(const Args& args)
{
    if (!args.sweep_file.empty()) {
        throw UsageError("--serve and --sweep are mutually exclusive");
    }
    if (args.trace || args.trace_json || !args.trace_csv.empty()) {
        throw UsageError("--serve has no per-phase trace; drop the "
                         "--trace flags");
    }
}

int
run_serve_mode(const Args& args)
{
    const ModelConfig model = model_by_name(args.model);
    const AccelConfig accel = accel_from_args(args);

    // Flag-VALUE validation: unknown arrival kinds / scheduling
    // policies and a missing or unreadable replay trace are CLI
    // misuse (exit 2), like every other bad flag value.
    ArrivalOptions trace_options;
    const bool auto_sched = args.sched == "auto";
    SchedPolicy fixed_policy = SchedPolicy::kPrefillFirst;
    try {
        trace_options.kind = parse_arrival_kind(args.arrival);
        if (!auto_sched) {
            fixed_policy = parse_sched_policy(args.sched);
        }
    } catch (const InternalError&) {
        throw;
    } catch (const Error& e) {
        throw UsageError(std::string(e.what()) +
                         " (--sched also accepts 'auto')");
    }
    if (trace_options.kind == ArrivalKind::kReplay &&
        args.arrival_file.empty()) {
        throw UsageError("--arrival replay needs --arrival-file FILE");
    }
    trace_options.seed = args.serve_seed;
    trace_options.rate_rps = args.rate;
    trace_options.requests = args.serve_requests;
    trace_options.prompt_tokens = args.prompt_tokens;
    trace_options.output_tokens = args.output_tokens;
    trace_options.replay_file = args.arrival_file;
    std::vector<Request> requests;
    try {
        requests = generate_arrivals(trace_options);
    } catch (const InternalError&) {
        throw;
    } catch (const Error& e) {
        // The trace comes straight from flag values; a bad one is
        // misuse, not a config error.
        throw UsageError(e.what());
    }

    ServeOptions options;
    options.sched.policy = fixed_policy;
    options.sched.max_batch = args.max_batch;
    options.policy = args.policy;
    options.ctx_bucket = args.ctx_bucket;
    options.sim.objective = parse_objective(args.objective);
    // Serving prices hundreds of small per-step searches, so the
    // analytic mapper is the default; --search-mode exhaustive is the
    // fallback. Both paths (fixed --sched and the auto DSE) use it.
    const SearchMode serve_mode =
        search_mode_from_args(args, SearchMode::kAnalytic);
    options.sim.search_mode = serve_mode;
    options.dse_mode = serve_mode;
    options.sim.quick = args.quick;
    options.sim.threads = static_cast<unsigned>(args.threads);
    options.sim.prune = !args.no_prune;
    options.sim.batch_width =
        static_cast<std::size_t>(args.batch_width);
    options.sim.baseline_overlap = args.serialized_baseline
                                       ? BaselineOverlap::kSerialized
                                       : BaselineOverlap::kFull;
    options.sim.styles = args.styles;
    options.sim.cancel = &g_signal_cancel;

    // Journal identity: the full serving space (accel, model, the
    // whole trace, scheduler + DSE knobs) plus the sched-mode string,
    // so an `auto` search never resumes a fixed-policy journal.
    RunJournalHeader journal_header;
    journal_header.mode = "serve";
    journal_header.space_hash = fnv1a64(
        args.sched + '|' +
        serving_space_canonical(accel, model, requests, options));
    const std::unique_ptr<RunJournal> journal =
        open_journal(args, journal_header);
    options.journal = journal.get();

    ServeReport report;
    std::string picked_style =
        args.styles.empty() ? "default" : join(args.styles, ",");
    if (auto_sched) {
        const ServingSearchResult result =
            search_serving(accel, model, requests, options);
        FLAT_CHECK(result.found || result.report.cancelled,
                   "no feasible execution style x batching policy "
                   "combination for this trace");
        report = result.report;
        if (result.found) {
            picked_style = result.best.style;
        }
    } else {
        report = run_serving(accel, model, requests, options);
    }

    print_serve_report(args, accel, report, picked_style.c_str());
    if (report.cancelled) {
        // Partial SLO report first, then the documented cancelled
        // exit path (stderr diagnostic + exit code 5).
        throw CancelledError(CancelReason::kSignal,
                             "serving drained after cancellation; the "
                             "report covers the completed prefix");
    }
    return 0;
}

int
run_sweep_mode(const Args& args)
{
    const SweepSpec spec = SweepSpec::from_file(args.sweep_file);
    SweepOptions options;
    options.threads = static_cast<unsigned>(args.threads);
    options.deadline_ms = static_cast<double>(args.deadline_ms);
    options.fail_fast = args.fail_fast;
    options.retries = static_cast<unsigned>(args.retries);
    options.retry_backoff_ms = static_cast<double>(args.retry_backoff_ms);
    options.sim.prune = !args.no_prune;
    options.sim.batch_width = static_cast<std::size_t>(args.batch_width);
    options.sim.baseline_overlap = args.serialized_baseline
                                       ? BaselineOverlap::kSerialized
                                       : BaselineOverlap::kFull;
    options.sim.styles = args.styles;
    options.cancel = &g_signal_cancel;

    const std::unique_ptr<RunJournal> journal =
        open_journal(args, sweep_journal_header(spec, options.sim));
    options.journal = journal.get();

    const SweepReport report = run_sweep(spec, options);

    if (!args.sweep_csv.empty()) {
        report.write_csv(args.sweep_csv);
    }
    if (args.json) {
        JsonWriter json;
        report.write_json(json);
        std::printf("%s\n", json.str().c_str());
        if (args.cache_stats) {
            // Second JSON document, like --trace-json in run():
            // consumers read stdout as a document stream.
            JsonWriter cache_json;
            cache_json.begin_object();
            write_cache_stats(cache_json);
            cache_json.end_object();
            std::printf("%s\n", cache_json.str().c_str());
        }
    } else {
        report.print(std::cout);
        if (args.cache_stats) {
            print_cache_stats(std::cout);
        }
    }
    return report.exit_code();
}

} // namespace

int
main(int argc, char** argv)
{
#ifdef SIGPIPE
    // A consumer closing the pipe (flatsim --sweep ... | head) must
    // not kill the run mid-write: writes past the close fail silently,
    // the report is truncated, and the exit code still reflects the
    // run (see --help).
    std::signal(SIGPIPE, SIG_IGN);
#endif
    Args args;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string flag = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc) {
                    throw UsageError(flag + " needs a value");
                }
                return argv[++i];
            };
            if (flag == "--help" || flag == "-h") {
                print_usage();
                return 0;
            } else if (flag == "--list") {
                print_catalog();
                return 0;
            } else if (flag == "--model") {
                args.model = next();
            } else if (flag == "--platform") {
                args.platform = next();
            } else if (flag == "--platform-file") {
                args.platform_file = next();
            } else if (flag == "--policy") {
                args.policy = next();
            } else if (flag == "--accel") {
                args.accel = next();
            } else if (flag == "--style") {
                for (const std::string& part :
                     flat::split(next(), ',')) {
                    const std::string id = flat::to_lower(flat::trim(part));
                    if (!id.empty()) {
                        args.styles.push_back(id);
                    }
                }
            } else if (flag == "--list-styles") {
                print_styles();
                return 0;
            } else if (flag == "--scope") {
                args.scope = next();
            } else if (flag == "--seq") {
                args.seq = parse_u64_flag(flag, next(), 1, kMaxDim);
            } else if (flag == "--kv-seq") {
                args.kv_seq = parse_u64_flag(flag, next(), 1, kMaxDim);
            } else if (flag == "--window") {
                args.window = parse_u64_flag(flag, next(), 1, kMaxDim);
            } else if (flag == "--batch") {
                args.batch = parse_u64_flag(flag, next(), 1, kMaxDim);
            } else if (flag == "--buffer") {
                args.buffer = next();
            } else if (flag == "--sg2") {
                args.sg2 = next();
            } else if (flag == "--sg2-bw") {
                args.sg2_bw = next();
            } else if (flag == "--offchip-bw") {
                args.offchip_bw = next();
            } else if (flag == "--objective") {
                args.objective = next();
            } else if (flag == "--search-mode") {
                args.search_mode = flat::to_lower(next());
            } else if (flag == "--block") {
                args.block = true;
            } else if (flag == "--threads") {
                args.threads = parse_u64_flag(flag, next(), 0, 4096);
            } else if (flag == "--batch-width") {
                args.batch_width = parse_u64_flag(flag, next(), 0, 1 << 20);
            } else if (flag == "--sweep") {
                args.sweep_file = next();
            } else if (flag == "--sweep-csv") {
                args.sweep_csv = next();
            } else if (flag == "--deadline") {
                args.deadline_ms = parse_u64_flag(flag, next());
            } else if (flag == "--keep-going") {
                args.fail_fast = false;
            } else if (flag == "--fail-fast") {
                args.fail_fast = true;
            } else if (flag == "--retries") {
                args.retries = parse_u64_flag(flag, next(), 0, 1000);
            } else if (flag == "--retry-backoff") {
                args.retry_backoff_ms = parse_u64_flag(flag, next());
            } else if (flag == "--journal") {
                args.journal_file = next();
            } else if (flag == "--resume") {
                args.resume_file = next();
            } else if (flag == "--inject-fault") {
                args.inject_faults.push_back(next());
            } else if (flag == "--no-prune") {
                args.no_prune = true;
            } else if (flag == "--no-eval-cache") {
                args.no_eval_cache = true;
            } else if (flag == "--cache-stats") {
                args.cache_stats = true;
            } else if (flag == "--serialized-baseline") {
                args.serialized_baseline = true;
            } else if (flag == "--quick") {
                args.quick = true;
            } else if (flag == "--json") {
                args.json = true;
            } else if (flag == "--trace") {
                args.trace = true;
            } else if (flag == "--trace-json") {
                args.trace_json = true;
            } else if (flag == "--trace-csv") {
                args.trace_csv = next();
            } else if (flag == "--devices") {
                args.devices = parse_u64_flag(flag, next(), 1, 4096);
            } else if (flag == "--shard-axis") {
                args.shard_axis = next();
            } else if (flag == "--topology") {
                args.topology = next();
            } else if (flag == "--link-bw") {
                args.link_bw = next();
            } else if (flag == "--link-latency") {
                args.link_latency = next();
            } else if (flag == "--scaleout") {
                args.scaleout_preset = next();
            } else if (flag == "--scaleout-file") {
                args.scaleout_file = next();
            } else if (flag == "--serve") {
                args.serve = true;
            } else if (flag == "--arrival") {
                args.arrival = next();
            } else if (flag == "--arrival-file") {
                args.arrival_file = next();
            } else if (flag == "--rate") {
                args.rate = parse_positive_double_flag(flag, next());
            } else if (flag == "--serve-requests") {
                args.serve_requests =
                    parse_u64_flag(flag, next(), 1, 1 << 20);
            } else if (flag == "--serve-seed") {
                args.serve_seed = parse_u64_flag(flag, next());
            } else if (flag == "--sched") {
                args.sched = flat::to_lower(next());
            } else if (flag == "--max-batch") {
                args.max_batch = parse_u64_flag(flag, next(), 1, 4096);
            } else if (flag == "--prompt-tokens") {
                args.prompt_tokens =
                    parse_u64_flag(flag, next(), 1, kMaxDim);
            } else if (flag == "--output-tokens") {
                args.output_tokens =
                    parse_u64_flag(flag, next(), 1, kMaxDim);
            } else if (flag == "--ctx-bucket") {
                args.ctx_bucket =
                    parse_u64_flag(flag, next(), 1, kMaxDim);
            } else {
                std::fprintf(stderr, "unknown flag: %s\n\n",
                             flag.c_str());
                print_usage();
                return 2;
            }
        }
        // Unknown --style values are CLI misuse (exit 2), caught here
        // before any work starts; the DSE re-checks defensively.
        for (const std::string& id : args.styles) {
            if (id != "all" &&
                flat::find_execution_style(id) == nullptr) {
                throw flat::UsageError(
                    "unknown execution style '" + id +
                    "' (run 'flatsim --list-styles' for the "
                    "registered ids)");
            }
        }
        // Bad --search-mode values are CLI misuse too (exit 2).
        if (!args.search_mode.empty()) {
            try {
                flat::parse_search_mode(args.search_mode);
            } catch (const flat::InternalError&) {
                throw;
            } catch (const flat::Error& e) {
                throw flat::UsageError(e.what());
            }
        }
        if (!args.journal_file.empty() && !args.resume_file.empty()) {
            throw flat::UsageError(
                "--journal and --resume are mutually exclusive "
                "(--resume keeps appending to the journal it resumes)");
        }
        if (args.no_eval_cache) {
            flat::EvalCache::set_enabled(false);
        }
        for (const std::string& spec : args.inject_faults) {
            // A malformed fault spec is CLI misuse, not a config error.
            try {
                const auto [site, fault] = flat::parse_fault_spec(spec);
                flat::arm_fault(site, fault);
            } catch (const flat::Error& e) {
                throw flat::UsageError(e.what());
            }
        }
        // Arm the graceful SIGINT/SIGTERM drain only once real work
        // starts; a second signal hard-exits with 128+signo.
        flat::install_signal_cancellation(&g_signal_cancel);
        if (args.block) {
            throw_if_block_conflicts(args);
            return run_block_mode(args);
        }
        if (args.serve) {
            throw_if_serve_conflicts(args);
            return run_serve_mode(args);
        }
        return args.sweep_file.empty() ? run(args)
                                       : run_sweep_mode(args);
    } catch (const std::exception& e) {
        // Map the taxonomy onto the exit-code contract: usage -> 2,
        // config/infeasible -> 1, internal/oom -> 3 (see diagnostics.h).
        const flat::Diagnostic diag = flat::diagnostic_from_exception(e);
        std::fprintf(stderr, "%s\n", diag.to_string().c_str());
        if (diag.kind == flat::DiagKind::kUsage) {
            std::fprintf(stderr, "run 'flatsim --help' for usage\n");
        }
        // Last stderr line is a machine-readable record of the same
        // diagnostic (tests and wrappers parse it; see --help).
        flat::JsonWriter json;
        diag.write_json(json);
        std::fprintf(stderr, "%s\n", json.str().c_str());
        return flat::exit_code_for(diag.kind);
    } catch (...) {
        std::fprintf(stderr, "[flat] unexpected unknown exception\n");
        return 3;
    }
}

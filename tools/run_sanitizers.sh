#!/bin/sh
# Build the ThreadSanitizer tree and run the concurrency-, robustness-
# and mapper-labeled tests under it. The labels cover the thread pool,
# the deterministic-reduction property tests, cancellation, journaled
# resume, the fault-injected sweep paths, and the analytic tile
# mapper's parallel refinement — the code where a data race would
# silently break the bit-identical-results contract.
#
# Usage: tools/run_sanitizers.sh [BUILD_DIR]   (default: build-tsan)
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build-tsan"}

cmake -B "$build" -S "$repo" \
    -DFLAT_SANITIZE=thread \
    -DFLAT_BUILD_BENCH=OFF \
    -DFLAT_BUILD_EXAMPLES=OFF
cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)"
ctest --test-dir "$build" -L 'concurrency|robustness|mapper' \
    --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"

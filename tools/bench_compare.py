#!/usr/bin/env python3
"""Compare two BENCH_dse.json files from bench/dse_throughput.

Usage: bench_compare.py BASELINE.json CANDIDATE.json [--threshold PCT]

Fails (exit 1) when the candidate's cache-on points/s regresses by more
than the threshold (default 10%) relative to the baseline. Secondary
metrics (cache-off points/s, hit rate, allocations/point, hot-path
ns/eval) are reported but only warn: they are noisier and a regression
there shows up in the headline number anyway.

Exit codes: 0 no regression, 1 regression past the threshold, 2 usage
or malformed input.
"""

import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"bench_compare: cannot read {path}: {err}",
              file=sys.stderr)
        sys.exit(2)
    if doc.get("bench") != "dse_throughput":
        print(f"bench_compare: {path} is not a dse_throughput report",
              file=sys.stderr)
        sys.exit(2)
    return doc


def pick(doc, *keys):
    node = doc
    for key in keys:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def rel_change(base, cand):
    if base is None or cand is None or base <= 0:
        return None
    return (cand - base) / base


def main(argv):
    threshold = 0.10
    paths = []
    i = 1
    while i < len(argv):
        if argv[i] == "--threshold" and i + 1 < len(argv):
            try:
                threshold = float(argv[i + 1]) / 100.0
            except ValueError:
                print("bench_compare: bad --threshold", file=sys.stderr)
                return 2
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if len(paths) != 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2

    base = load(paths[0])
    cand = load(paths[1])

    headline = ("cache_on", "points_per_sec")
    secondary = [
        ("cache_off points/s", ("cache_off", "points_per_sec"), +1),
        ("cache hit rate", ("cache_on", "hit_rate"), +1),
        ("allocs/point", ("allocs_per_point",), -1),
        ("hot path scratch ns/eval",
         ("hot_path", "scratch_ns_per_eval"), -1),
    ]

    b = pick(base, *headline)
    c = pick(cand, *headline)
    change = rel_change(b, c)
    if change is None:
        print("bench_compare: cache_on.points_per_sec missing or zero",
              file=sys.stderr)
        return 2
    print(f"cache-on points/s: {b:.0f} -> {c:.0f} "
          f"({100.0 * change:+.1f}%)")

    for label, keys, direction in secondary:
        sb, sc = pick(base, *keys), pick(cand, *keys)
        schange = rel_change(sb, sc)
        if schange is None:
            continue
        note = ""
        if direction * schange < -threshold:
            note = "  [warn: worse than threshold]"
        print(f"{label}: {sb:.4g} -> {sc:.4g} "
              f"({100.0 * schange:+.1f}%){note}")

    if change < -threshold:
        print(f"REGRESSION: cache-on points/s down "
              f"{100.0 * -change:.1f}% (> {100.0 * threshold:.0f}% "
              f"threshold)")
        return 1
    print("no regression")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Compare two bench JSON reports (BENCH_dse.json, BENCH_cache.json).

Usage: bench_compare.py BASELINE.json CANDIDATE.json [--threshold PCT]

Fails (exit 1) when the candidate's headline metric regresses by more
than the threshold (default 7.5%) relative to the baseline:

  dse_throughput      cache_on.points_per_sec
  cache_contention    mixed.t8.lookups_per_sec
  serving_throughput  prefill_first.steps_per_sec
  mapper_speedup      analytic.points_per_sec

Secondary metrics are reported but only warn: they are noisier and a
real regression shows up in the headline number anyway.

A missing BASELINE file is not an error: the first run of a freshly
added bench has nothing to compare against, so the candidate is
validated on its own and the script reports "no baseline, recording"
with exit 0 (commit the candidate as the baseline). A missing or
garbled CANDIDATE is still exit 3.

Both documents are flattened to dot-joined numeric keys and only the
INTERSECTION is compared, so a report produced by a newer bench binary
(added fields) or an older one (missing fields) still compares cleanly;
keys present in only one file are listed as schema drift, never an
error. This keeps stored baselines usable across bench revisions.

Exit codes: 0 no regression, 1 regression past the threshold, 2 usage
error, 3 unusable bench input — a missing, truncated, or
schema-mismatched baseline/candidate (no 'bench' field, different
benches, missing headline, no comparable metrics). Input problems are
always a one-line diagnostic, never a traceback.
"""

import json
import os
import sys

# Per-bench headline (the metric that can FAIL the comparison) and
# secondary metrics (report + warn only). direction +1 = higher is
# better, -1 = lower is better.
HEADLINES = {
    "dse_throughput": ("cache-on points/s", "cache_on.points_per_sec"),
    "cache_contention": ("mixed t8 lookups/s",
                         "mixed.t8.lookups_per_sec"),
    "serving_throughput": ("prefill-first sim steps/s (wall)",
                           "prefill_first.steps_per_sec"),
    "mapper_speedup": ("analytic points/s", "analytic.points_per_sec"),
}
SECONDARY = {
    "dse_throughput": [
        ("cache-off points/s", "cache_off.points_per_sec", +1),
        ("sweep cache speedup", "cache_speedup", +1),
        ("cache hit rate", "cache_on.hit_rate", +1),
        ("allocs/point", "allocs_per_point", -1),
        ("hot path scratch ns/eval", "hot_path.scratch_ns_per_eval",
         -1),
    ],
    "cache_contention": [
        ("hot t1 lookups/s", "hot.t1.lookups_per_sec", +1),
        ("hot t32 lookups/s", "hot.t32.lookups_per_sec", +1),
        ("cold t8 lookups/s", "cold.t8.lookups_per_sec", +1),
    ],
    "serving_throughput": [
        ("decode-first steps/s (wall)",
         "decode_first.steps_per_sec", +1),
        ("prefill-first sim tokens/s",
         "prefill_first.sim_tokens_per_s", +1),
        ("prefill-first p99 latency", "prefill_first.p99_s", -1),
        ("decode-first sim tokens/s",
         "decode_first.sim_tokens_per_s", +1),
        ("decode-first p99 latency", "decode_first.p99_s", -1),
    ],
    "mapper_speedup": [
        ("analytic-vs-exhaustive speedup", "speedup_x", +1),
        ("speedup vs pruned sweep", "speedup_vs_pruned_x", +1),
        ("exhaustive points/s", "exhaustive.points_per_sec", +1),
        ("golden-parity configs", "golden.parity", +1),
    ],
}


EXIT_BAD_INPUT = 3


def load(path):
    """One report, or a one-line diagnostic + exit 3 (missing file,
    truncated/garbled JSON, non-object top level — never a traceback)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"bench_compare: cannot read {path}: {err}",
              file=sys.stderr)
        sys.exit(EXIT_BAD_INPUT)
    if not isinstance(doc, dict):
        print(f"bench_compare: {path} is not a JSON object",
              file=sys.stderr)
        sys.exit(EXIT_BAD_INPUT)
    return doc


def flatten(doc, prefix=""):
    """Dot-joined {key: number} view of every numeric leaf."""
    flat = {}
    for key, value in doc.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten(value, name + "."))
        elif isinstance(value, (int, float)) and not isinstance(
                value, bool):
            flat[name] = float(value)
    return flat


def rel_change(base, cand):
    if base is None or cand is None or base <= 0:
        return None
    return (cand - base) / base


def main(argv):
    threshold = 0.075
    paths = []
    i = 1
    while i < len(argv):
        if argv[i] == "--threshold" and i + 1 < len(argv):
            try:
                threshold = float(argv[i + 1]) / 100.0
            except ValueError:
                print("bench_compare: bad --threshold", file=sys.stderr)
                return 2
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if len(paths) != 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2

    # A brand-new bench has no stored baseline yet: validate the
    # candidate alone and succeed, telling the caller to record it.
    if not os.path.exists(paths[0]):
        cand_doc = load(paths[1])
        cand_bench = cand_doc.get("bench")
        if not isinstance(cand_bench, str):
            print(f"bench_compare: {paths[1]} has no 'bench' field "
                  f"(truncated or not a bench report)",
                  file=sys.stderr)
            return EXIT_BAD_INPUT
        if cand_bench in HEADLINES:
            label, key = HEADLINES[cand_bench]
            value = flatten(cand_doc).get(key)
            if value is None or value <= 0:
                print(f"bench_compare: headline {key} missing or zero "
                      f"in {paths[1]}", file=sys.stderr)
                return EXIT_BAD_INPUT
            print(f"{label}: {value:.0f} (candidate)")
        print(f"bench_compare: no baseline at {paths[0]}, recording — "
              f"commit {paths[1]} as the {cand_bench} baseline")
        return 0

    base_doc = load(paths[0])
    cand_doc = load(paths[1])
    bench = base_doc.get("bench")
    # An empty/partial document ({} from an interrupted bench run) has
    # no "bench" field; it used to slip through the mismatch check as
    # None == None and compare an empty intersection — a silent pass.
    for path, doc in ((paths[0], base_doc), (paths[1], cand_doc)):
        if not isinstance(doc.get("bench"), str):
            print(f"bench_compare: {path} has no 'bench' field "
                  f"(truncated or not a bench report)",
                  file=sys.stderr)
            return EXIT_BAD_INPUT
    if bench != cand_doc.get("bench"):
        print(f"bench_compare: comparing different benches "
              f"({base_doc.get('bench')} vs {cand_doc.get('bench')})",
              file=sys.stderr)
        return EXIT_BAD_INPUT

    base = flatten(base_doc)
    cand = flatten(cand_doc)

    # Schema drift: tolerated, but say so — a silently shrinking
    # intersection could otherwise hide a renamed headline.
    for name, only in (("baseline", base.keys() - cand.keys()),
                       ("candidate", cand.keys() - base.keys())):
        for key in sorted(only):
            print(f"note: {key} only in {name} (schema drift, "
                  f"ignored)")

    if not (base.keys() & cand.keys()):
        print(f"bench_compare: no comparable numeric metrics between "
              f"{paths[0]} and {paths[1]}", file=sys.stderr)
        return EXIT_BAD_INPUT

    if bench not in HEADLINES:
        print(f"bench_compare: unknown bench '{bench}': comparing "
              f"intersection only, nothing can fail")
        for key in sorted(base.keys() & cand.keys()):
            change = rel_change(base[key], cand[key])
            if change is not None:
                print(f"{key}: {base[key]:.4g} -> {cand[key]:.4g} "
                      f"({100.0 * change:+.1f}%)")
        return 0

    label, key = HEADLINES[bench]
    change = rel_change(base.get(key), cand.get(key))
    if change is None:
        print(f"bench_compare: headline {key} missing or zero",
              file=sys.stderr)
        return EXIT_BAD_INPUT
    print(f"{label}: {base[key]:.0f} -> {cand[key]:.0f} "
          f"({100.0 * change:+.1f}%)")

    for slabel, skey, direction in SECONDARY.get(bench, []):
        schange = rel_change(base.get(skey), cand.get(skey))
        if schange is None:
            continue
        note = ""
        if direction * schange < -threshold:
            note = "  [warn: worse than threshold]"
        print(f"{slabel}: {base[skey]:.4g} -> {cand[skey]:.4g} "
              f"({100.0 * schange:+.1f}%){note}")

    if change < -threshold:
        print(f"REGRESSION: {label} down {100.0 * -change:.1f}% "
              f"(> {100.0 * threshold:.1f}% threshold)")
        return 1
    print("no regression")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

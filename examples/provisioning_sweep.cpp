/**
 * @file
 * The paper's closing claim (§8): "for accelerators tailored to
 * attention, designers can now budget a much smaller on-chip buffer."
 * This example quantifies that: for each target sequence length, find
 * the smallest SG that reaches 90% of cap utilization under the
 * baseline dataflow vs under FLAT, by bisection over the buffer axis.
 *
 * Usage: provisioning_sweep [model] [edge|cloud]
 */
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "core/simulator.h"
#include "workload/model_config.h"

namespace {

using namespace flat;

double
util_at_buffer(const AccelConfig& base, std::uint64_t sg_bytes,
               const Workload& w, const char* policy)
{
    AccelConfig accel = base;
    accel.sg_bytes = sg_bytes;
    SimOptions options;
    options.quick = true;
    const Simulator sim(accel);
    return sim
        .run(w, Scope::kLogitAttend, DataflowPolicy::parse(policy),
             options)
        .util();
}

/** Smallest buffer reaching @p fraction of the policy's own cap. */
std::uint64_t
required_buffer(const AccelConfig& base, const Workload& w,
                const char* policy, double fraction)
{
    const std::uint64_t hi_cap = 64ull * 1024 * 1024 * 1024; // 64 GiB
    const double roof = util_at_buffer(base, hi_cap, w, policy);
    const double target = fraction * roof;
    std::uint64_t lo = 4 * 1024;
    std::uint64_t hi = hi_cap;
    while (hi > lo * 21 / 20) { // ~5% resolution
        const std::uint64_t mid = static_cast<std::uint64_t>(
            std::sqrt(static_cast<double>(lo) *
                      static_cast<double>(hi)));
        if (util_at_buffer(base, mid, w, policy) >= target) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    return hi;
}

} // namespace

int
main(int argc, char** argv)
{
    const ModelConfig model = model_by_name(argc > 1 ? argv[1] : "bert");
    const bool cloud = argc > 2 && std::strcmp(argv[2], "cloud") == 0;
    const AccelConfig base = cloud ? cloud_accel() : edge_accel();

    std::printf("Buffer provisioning for %s on the %s platform "
                "(smallest SG reaching 90%% of each dataflow's own "
                "cap):\n\n",
                model.name.c_str(), base.name.c_str());

    TextTable table({"SeqLen", "Base-opt needs", "FLAT-opt needs",
                     "reduction"});
    for (std::uint64_t n : {512u, 2048u, 8192u, 32768u}) {
        const Workload w = make_workload(model, 64, n);
        const std::uint64_t base_buf =
            required_buffer(base, w, "base-opt", 0.9);
        const std::uint64_t flat_buf =
            required_buffer(base, w, "flat-opt", 0.9);
        table.add_row(
            {std::to_string(n), format_bytes(base_buf),
             format_bytes(flat_buf),
             std::to_string(static_cast<int>(
                 100.0 * (1.0 - static_cast<double>(flat_buf) /
                                    static_cast<double>(base_buf)))) +
                 "%"});
    }
    table.print(std::cout);

    std::printf(
        "\nThe gap IS the paper's conclusion: the baseline needs the "
        "O(N^2) working set on-chip to peak,\nFLAT only the O(N) "
        "R-granularity footprint — so the buffer budget shrinks by "
        "orders of magnitude\nand grows linearly instead of "
        "quadratically with the target sequence length.\n");
    return 0;
}

/**
 * @file
 * Long-context composition demo (§7): run the functional FLAT kernel
 * with Longformer-style local attention on a long sequence — the kind
 * of document-summarization workload the paper's introduction motivates
 * — and contrast the measured memory traffic of three strategies:
 * baseline dense, FLAT dense, and FLAT + local window.
 *
 * Usage: sparse_long_context [seq_len] [window]
 */
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "kernels/attention.h"

int
main(int argc, char** argv)
{
    using namespace flat;

    const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 4096;
    const std::size_t window = argc > 2 ? std::stoul(argv[2]) : 128;
    const std::size_t dk = 64;
    const std::size_t row_tile = 64;

    Matrix q(n, dk);
    Matrix k(n, dk);
    Matrix v(n, dk);
    fill_random(q, 1);
    fill_random(k, 2);
    fill_random(v, 3);

    std::printf("Single head, N=%zu dk=%zu, window=%zu, R=%zu\n\n", n,
                dk, window, row_tile);

    TrafficMeter dense_base;
    const Matrix out_base = attention_reference(q, k, v, {}, &dense_base);

    TrafficMeter dense_flat;
    const Matrix out_flat =
        attention_flat(q, k, v, row_tile, {}, &dense_flat);

    TrafficMeter local_flat;
    const Matrix out_local =
        attention_flat_local(q, k, v, row_tile, window, {}, &local_flat);

    std::printf("numerics: |dense FLAT - dense base| = %.2g "
                "(identical); local differs by design (sparse "
                "pattern).\n\n",
                out_base.max_abs_diff(out_flat));
    (void)out_local;

    TextTable table({"strategy", "off-chip total", "intermediate "
                                                   "off-chip",
                     "intermediate on-chip"});
    auto row = [&](const char* name, const TrafficMeter& m) {
        table.add_row({name, format_bytes(m.total_offchip()),
                       format_bytes(m.offchip_bytes("intermediate")),
                       format_bytes(m.onchip_bytes("intermediate"))});
    };
    row("baseline dense", dense_base);
    row("FLAT dense", dense_flat);
    row("FLAT + local window", local_flat);
    table.print(std::cout);

    std::printf(
        "\nThree regimes: the baseline moves the O(N^2) logits off-chip "
        "four times; dense FLAT keeps\nthem on-chip but still computes "
        "(and stages) O(N^2) of them; FLAT+local shrinks even the\n"
        "on-chip slice to O(R*(R+2w)) per pass — the two techniques "
        "compose, as §7 claims.\n");
    return 0;
}

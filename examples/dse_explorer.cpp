/**
 * @file
 * Interactive-ish DSE driver: pick a model, platform, sequence length
 * and objective on the command line; runs the full (non-quick) design
 * space exploration for the fused L-A operator and reports the winning
 * dataflow plus the runner-up granularities.
 *
 * Usage: dse_explorer [model] [edge|cloud] [seq_len] [runtime|energy|edp]
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>

#include "common/table.h"
#include "common/units.h"
#include "core/simulator.h"
#include "dse/search.h"
#include "workload/model_config.h"

int
main(int argc, char** argv)
{
    using namespace flat;

    const ModelConfig model =
        model_by_name(argc > 1 ? argv[1] : "bert");
    const bool cloud = argc > 2 && std::strcmp(argv[2], "cloud") == 0;
    const AccelConfig accel = cloud ? cloud_accel() : edge_accel();
    const std::uint64_t seq_len =
        argc > 3 ? std::stoull(argv[3]) : 4096;
    Objective objective = Objective::kRuntime;
    if (argc > 4 && std::strcmp(argv[4], "energy") == 0) {
        objective = Objective::kEnergy;
    } else if (argc > 4 && std::strcmp(argv[4], "edp") == 0) {
        objective = Objective::kEdp;
    }

    const Workload workload = make_workload(model, 64, seq_len);
    const AttentionDims dims = AttentionDims::from_workload(workload);

    std::printf("DSE: %s on %s, N=%llu, objective=%s\n\n",
                model.name.c_str(), accel.name.c_str(),
                static_cast<unsigned long long>(seq_len),
                objective == Objective::kRuntime ? "runtime"
                : objective == Objective::kEnergy ? "energy"
                                                  : "EDP");

    AttentionSearchOptions options;
    options.objective = objective;
    options.fused = true;

    // Full exploration so we can slice the space by granularity.
    const std::vector<DsePoint> points =
        explore_attention(accel, dims, options);
    std::printf("Explored %zu fused design points.\n\n", points.size());

    // Best point per granularity.
    std::map<std::string, const DsePoint*> best_by_gran;
    const DsePoint* best = nullptr;
    for (const DsePoint& p : points) {
        const std::string key = p.dataflow.cross.tag();
        const double value = p.objective_value(objective);
        if (best_by_gran[key] == nullptr ||
            value < best_by_gran[key]->objective_value(objective)) {
            best_by_gran[key] = &p;
        }
        if (best == nullptr || value < best->objective_value(objective)) {
            best = &p;
        }
    }

    TextTable table({"granularity", "Util", "cycles", "energy (mJ)",
                     "footprint", "staging", "winner?"});
    for (const auto& [key, point] : best_by_gran) {
        table.add_row(
            {key, std::to_string(point->cost.util()).substr(0, 5),
             format_count(point->cost.cycles),
             std::to_string(point->energy_j * 1e3).substr(0, 7),
             format_bytes(point->cost.live_footprint_bytes),
             point->dataflow.stage.tag(),
             (point == best) ? "<== best" : ""});
    }
    table.print(std::cout);

    std::printf("\nWinning dataflow: %s\n", best->dataflow.tag().c_str());
    std::printf("  logit stage: tile %s, order %s, %s\n",
                best->dataflow.l2_logit.tag().c_str(),
                to_string(best->dataflow.order_logit).c_str(),
                to_string(best->dataflow.stat_logit).c_str());
    std::printf("  attend stage: tile %s, order %s, %s\n",
                best->dataflow.l2_attend.tag().c_str(),
                to_string(best->dataflow.order_attend).c_str(),
                to_string(best->dataflow.stat_attend).c_str());
    std::printf("  Util %.3f, resident fraction %.2f\n",
                best->cost.util(), best->cost.resident_fraction);
    return 0;
}

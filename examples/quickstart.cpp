/**
 * @file
 * Quickstart: evaluate BERT-base on the edge accelerator preset with
 * the baseline dataflow and with FLAT, and print what changed.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>
#include <iostream>

#include "common/string_util.h"
#include "common/table.h"
#include "common/units.h"
#include "core/simulator.h"
#include "workload/model_config.h"

int
main()
{
    using namespace flat;

    // 1. Pick a workload: BERT-base, batch 64, 4K-token sequences.
    const ModelConfig model = bert_base();
    const Workload workload = make_workload(model, /*batch=*/64,
                                            /*seq_len=*/4096);

    // 2. Pick a platform: the paper's edge preset (32x32 PEs, 512KB SG,
    //    50GB/s off-chip).
    const Simulator sim(edge_accel());

    // 3. Evaluate the attention block under three dataflow policies.
    TextTable table({"dataflow", "Util", "runtime", "energy",
                     "L-A live footprint", "picked L-A dataflow"});
    for (const char* policy : {"base", "base-opt", "flat-opt"}) {
        const ScopeReport report = sim.run(
            workload, Scope::kBlock, DataflowPolicy::parse(policy));
        table.add_row({policy, strprintf("%.3f", report.util()),
                       format_time(report.runtime_s),
                       strprintf("%.2fJ", report.energy_j),
                       format_bytes(report.la_footprint_bytes),
                       report.la_dataflow_tag});
    }
    table.print(std::cout);

    std::printf(
        "\nFLAT fuses the Logit and Attend operators so the O(N^2) "
        "logits tensor never leaves the chip,\nand its R-granularity "
        "keeps the live footprint O(N) — which is why flat-opt reaches "
        "high\nutilization inside a 512KB scratchpad where the "
        "sequential baseline cannot.\n");
    return 0;
}

/**
 * @file
 * Encoder-decoder evaluation (T5-style): a decoder block contains BOTH
 * a self-attention layer over the generated sequence and a
 * cross-attention layer over the encoder output (Figure 1's footnote:
 * the query N can differ from the key/value N). This example composes
 * the two through the Simulator and shows where FLAT helps in each.
 *
 * Usage: encoder_decoder [enc_len] [dec_len]
 */
#include <cstdio>
#include <iostream>

#include "common/string_util.h"
#include "common/table.h"
#include "common/units.h"
#include "core/simulator.h"
#include "workload/model_config.h"

int
main(int argc, char** argv)
{
    using namespace flat;

    const std::uint64_t enc_len = argc > 1 ? std::stoull(argv[1]) : 16384;
    const std::uint64_t dec_len = argc > 2 ? std::stoull(argv[2]) : 512;
    const ModelConfig model = t5_small();
    const std::uint64_t batch = 64;

    std::printf("T5-small encoder-decoder, batch %llu: encoder N=%llu, "
                "decoder N=%llu (summarization shape)\n\n",
                static_cast<unsigned long long>(batch),
                static_cast<unsigned long long>(enc_len),
                static_cast<unsigned long long>(dec_len));

    // An edge-class NPU provisioned per the paper's §8 guidance: the
    // 16MiB scratchpad covers FLAT's O(N) footprint at these lengths
    // (the baseline would need the full O(N^2) tensor to benefit).
    AccelConfig accel = edge_accel();
    accel.sg_bytes = 16 * kMiB;
    const Simulator sim(accel);
    SimOptions options;
    options.quick = true;

    struct Piece {
        const char* name;
        Workload workload;
    };
    const Piece pieces[] = {
        {"encoder self-attention",
         make_workload(model, batch, enc_len)},
        {"decoder self-attention",
         make_workload(model, batch, dec_len)},
        {"decoder cross-attention (dec x enc)",
         make_cross_attention_workload(model, batch, dec_len, enc_len)},
    };

    TextTable table({"attention layer", "logits tensor", "Base-opt Util",
                     "FLAT-opt Util", "FLAT speedup"});
    double total_base = 0.0;
    double total_flat = 0.0;
    for (const Piece& piece : pieces) {
        const ScopeReport base =
            sim.run(piece.workload, Scope::kLogitAttend,
                    DataflowPolicy::parse("base-opt"), options);
        const ScopeReport flat_rep =
            sim.run(piece.workload, Scope::kLogitAttend,
                    DataflowPolicy::parse("flat-opt"), options);
        total_base += base.cycles;
        total_flat += flat_rep.cycles;
        table.add_row(
            {piece.name,
             format_bytes(piece.workload.softmax_op().output_elems() * 2),
             strprintf("%.3f", base.util()),
             strprintf("%.3f", flat_rep.util()),
             strprintf("%.2fx", base.cycles / flat_rep.cycles)});
    }
    table.print(std::cout);

    std::printf("\nAll three L-A layers together: FLAT %.2fx faster.\n",
                total_base / total_flat);
    std::printf(
        "\nThe cross-attention logits tensor is [N_dec x N_enc] — "
        "rectangular, but the softmax still\nreduces along the encoder "
        "axis, so FLAT's row granularity applies unchanged: R decoder "
        "rows\nper pass, each with its full N_enc-wide row of logits "
        "kept on-chip.\n");
    return 0;
}

/**
 * @file
 * The paper's motivating scenario: sequence lengths growing from 512 to
 * 256K tokens (summarization, language modeling, music). Shows how the
 * quadratic logits tensor crushes the baseline while FLAT scales, on
 * both platform presets.
 *
 * Usage: long_sequence_scaling [model] — model in
 *        {bert, trxl, flaubert, t5, xlm}, default bert.
 */
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "core/simulator.h"
#include "workload/model_config.h"

int
main(int argc, char** argv)
{
    using namespace flat;

    const ModelConfig model =
        model_by_name(argc > 1 ? argv[1] : "bert");
    std::printf("Model: %s (blocks=%u D=%u H=%u)\n\n",
                model.name.c_str(), model.num_blocks, model.hidden_dim,
                model.num_heads);

    for (const AccelConfig& accel : {edge_accel(), cloud_accel()}) {
        const Simulator sim(accel);
        std::printf("Platform %s: %llu PEs, %s SG, %s off-chip\n",
                    accel.name.c_str(),
                    static_cast<unsigned long long>(accel.num_pes()),
                    format_bytes(accel.sg_bytes).c_str(),
                    format_bandwidth(accel.offchip_bw).c_str());

        TextTable table({"SeqLen", "Base-opt Util", "FLAT-opt Util",
                         "speedup", "FLAT footprint", "fits SG?"});
        SimOptions options;
        options.quick = true;
        for (std::uint64_t n : {512u, 2048u, 8192u, 32768u, 131072u}) {
            const Workload w = make_workload(model, 64, n);
            const ScopeReport base = sim.run(
                w, Scope::kLogitAttend, DataflowPolicy::parse("base-opt"),
                options);
            const ScopeReport flat_rep = sim.run(
                w, Scope::kLogitAttend, DataflowPolicy::parse("flat-opt"),
                options);
            table.add_row(
                {std::to_string(n),
                 std::to_string(base.util()).substr(0, 5),
                 std::to_string(flat_rep.util()).substr(0, 5),
                 std::to_string(base.cycles / flat_rep.cycles)
                         .substr(0, 4) +
                     "x",
                 format_bytes(flat_rep.la_footprint_bytes),
                 flat_rep.la_footprint_bytes <= accel.sg_bytes ? "yes"
                                                               : "spill"});
        }
        table.print(std::cout);
        std::printf("\n");
    }

    std::printf("The FLAT-opt footprint column grows linearly in N "
                "(R-granularity, Table 2); once even that\noutgrows the "
                "buffer the spill model kicks in and utilization falls "
                "— provisioning the O(N)\nfootprint is the "
                "architectural takeaway of the paper (§8).\n");
    return 0;
}

/**
 * @file
 * Functional demonstration on real numbers: runs a full multi-head
 * attention layer twice — once with the baseline dataflow (logits
 * tensor materialized and round-tripped) and once with the FLAT
 * dataflow (row-streamed, intermediate stays on-chip) — checks the
 * outputs match to float precision, and prints the measured traffic.
 *
 * Usage: fused_attention_demo [seq_len] [row_tile]
 */
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "kernels/attention.h"

int
main(int argc, char** argv)
{
    using namespace flat;

    const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 512;
    const std::size_t row_tile = argc > 2 ? std::stoul(argv[2]) : 64;
    const std::size_t d = 256;
    const std::size_t heads = 8;

    Matrix x(n, d);
    fill_random(x, 2024);
    const AttentionLayerWeights weights =
        AttentionLayerWeights::random(d, 7);

    std::printf("Multi-head attention layer: N=%zu D=%zu H=%zu "
                "(row tile R=%zu)\n\n",
                n, d, heads, row_tile);

    TrafficMeter base_meter;
    const Matrix base_out = attention_layer_forward(
        x, x, weights, heads, /*row_tile=*/0, {}, &base_meter);

    TrafficMeter flat_meter;
    const Matrix flat_out = attention_layer_forward(
        x, x, weights, heads, row_tile, {}, &flat_meter);

    const float diff = base_out.max_abs_diff(flat_out);
    std::printf("max |baseline - FLAT| = %.3g  %s\n\n", diff,
                diff < 1e-3f ? "(identical up to float rounding)"
                             : "(MISMATCH!)");

    TextTable table({"tensor", "baseline off-chip", "FLAT off-chip"});
    for (const auto& [tensor, bytes] : base_meter.offchip_by_tensor()) {
        table.add_row({tensor, format_bytes(bytes),
                       format_bytes(flat_meter.offchip_bytes(tensor))});
    }
    table.add_separator();
    table.add_row({"TOTAL", format_bytes(base_meter.total_offchip()),
                   format_bytes(flat_meter.total_offchip())});
    table.print(std::cout);

    std::printf(
        "\nThe O(N^2) 'intermediate' row is the whole story: the "
        "baseline moves it off-chip four times\n(L writes it, softmax "
        "reads and writes it, A reads it); FLAT never moves it at all. "
        "FLAT is a\npure dataflow change — same arithmetic, same "
        "result, a fraction of the memory traffic.\n");
    return 0;
}

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-ubsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-ubsan/tests/test_common[1]_include.cmake")
include("/root/repo/build-ubsan/tests/test_arch[1]_include.cmake")
include("/root/repo/build-ubsan/tests/test_workload[1]_include.cmake")
include("/root/repo/build-ubsan/tests/test_dataflow[1]_include.cmake")
include("/root/repo/build-ubsan/tests/test_costmodel[1]_include.cmake")
include("/root/repo/build-ubsan/tests/test_energy[1]_include.cmake")
include("/root/repo/build-ubsan/tests/test_dse[1]_include.cmake")
include("/root/repo/build-ubsan/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build-ubsan/tests/test_dse_determinism[1]_include.cmake")
include("/root/repo/build-ubsan/tests/test_diagnostics[1]_include.cmake")
include("/root/repo/build-ubsan/tests/test_sweep[1]_include.cmake")
include("/root/repo/build-ubsan/tests/test_kernels[1]_include.cmake")
include("/root/repo/build-ubsan/tests/test_analysis[1]_include.cmake")
include("/root/repo/build-ubsan/tests/test_core[1]_include.cmake")
include("/root/repo/build-ubsan/tests/test_integration[1]_include.cmake")

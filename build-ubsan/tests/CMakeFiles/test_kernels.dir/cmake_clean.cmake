file(REMOVE_RECURSE
  "CMakeFiles/test_kernels.dir/kernels/test_attention_kernels.cc.o"
  "CMakeFiles/test_kernels.dir/kernels/test_attention_kernels.cc.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_layer_ops.cc.o"
  "CMakeFiles/test_kernels.dir/kernels/test_layer_ops.cc.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_local_attention.cc.o"
  "CMakeFiles/test_kernels.dir/kernels/test_local_attention.cc.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_matrix.cc.o"
  "CMakeFiles/test_kernels.dir/kernels/test_matrix.cc.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_softmax.cc.o"
  "CMakeFiles/test_kernels.dir/kernels/test_softmax.cc.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_transformer_block.cc.o"
  "CMakeFiles/test_kernels.dir/kernels/test_transformer_block.cc.o.d"
  "test_kernels"
  "test_kernels.pdb"
  "test_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

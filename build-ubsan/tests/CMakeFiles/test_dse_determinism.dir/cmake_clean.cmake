file(REMOVE_RECURSE
  "CMakeFiles/test_dse_determinism.dir/dse/test_search_determinism.cc.o"
  "CMakeFiles/test_dse_determinism.dir/dse/test_search_determinism.cc.o.d"
  "test_dse_determinism"
  "test_dse_determinism.pdb"
  "test_dse_determinism[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/costmodel/test_attention_cost.cc" "tests/CMakeFiles/test_costmodel.dir/costmodel/test_attention_cost.cc.o" "gcc" "tests/CMakeFiles/test_costmodel.dir/costmodel/test_attention_cost.cc.o.d"
  "/root/repo/tests/costmodel/test_gemm_engine.cc" "tests/CMakeFiles/test_costmodel.dir/costmodel/test_gemm_engine.cc.o" "gcc" "tests/CMakeFiles/test_costmodel.dir/costmodel/test_gemm_engine.cc.o.d"
  "/root/repo/tests/costmodel/test_hierarchy.cc" "tests/CMakeFiles/test_costmodel.dir/costmodel/test_hierarchy.cc.o" "gcc" "tests/CMakeFiles/test_costmodel.dir/costmodel/test_hierarchy.cc.o.d"
  "/root/repo/tests/costmodel/test_operator_cost.cc" "tests/CMakeFiles/test_costmodel.dir/costmodel/test_operator_cost.cc.o" "gcc" "tests/CMakeFiles/test_costmodel.dir/costmodel/test_operator_cost.cc.o.d"
  "/root/repo/tests/costmodel/test_trace.cc" "tests/CMakeFiles/test_costmodel.dir/costmodel/test_trace.cc.o" "gcc" "tests/CMakeFiles/test_costmodel.dir/costmodel/test_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-ubsan/src/kernels/CMakeFiles/flat_kernels.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/analysis/CMakeFiles/flat_analysis.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/core/CMakeFiles/flat_core.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/dse/CMakeFiles/flat_dse.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/energy/CMakeFiles/flat_energy.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/costmodel/CMakeFiles/flat_costmodel.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/arch/CMakeFiles/flat_arch.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/dataflow/CMakeFiles/flat_dataflow.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/workload/CMakeFiles/flat_workload.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/common/CMakeFiles/flat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/test_costmodel.dir/costmodel/test_attention_cost.cc.o"
  "CMakeFiles/test_costmodel.dir/costmodel/test_attention_cost.cc.o.d"
  "CMakeFiles/test_costmodel.dir/costmodel/test_gemm_engine.cc.o"
  "CMakeFiles/test_costmodel.dir/costmodel/test_gemm_engine.cc.o.d"
  "CMakeFiles/test_costmodel.dir/costmodel/test_hierarchy.cc.o"
  "CMakeFiles/test_costmodel.dir/costmodel/test_hierarchy.cc.o.d"
  "CMakeFiles/test_costmodel.dir/costmodel/test_operator_cost.cc.o"
  "CMakeFiles/test_costmodel.dir/costmodel/test_operator_cost.cc.o.d"
  "CMakeFiles/test_costmodel.dir/costmodel/test_trace.cc.o"
  "CMakeFiles/test_costmodel.dir/costmodel/test_trace.cc.o.d"
  "test_costmodel"
  "test_costmodel.pdb"
  "test_costmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

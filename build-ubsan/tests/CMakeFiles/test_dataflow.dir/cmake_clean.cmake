file(REMOVE_RECURSE
  "CMakeFiles/test_dataflow.dir/dataflow/test_footprint.cc.o"
  "CMakeFiles/test_dataflow.dir/dataflow/test_footprint.cc.o.d"
  "CMakeFiles/test_dataflow.dir/dataflow/test_granularity.cc.o"
  "CMakeFiles/test_dataflow.dir/dataflow/test_granularity.cc.o.d"
  "CMakeFiles/test_dataflow.dir/dataflow/test_reuse.cc.o"
  "CMakeFiles/test_dataflow.dir/dataflow/test_reuse.cc.o.d"
  "CMakeFiles/test_dataflow.dir/dataflow/test_tiling.cc.o"
  "CMakeFiles/test_dataflow.dir/dataflow/test_tiling.cc.o.d"
  "test_dataflow"
  "test_dataflow.pdb"
  "test_dataflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_arch.dir/arch/test_accel_config.cc.o"
  "CMakeFiles/test_arch.dir/arch/test_accel_config.cc.o.d"
  "CMakeFiles/test_arch.dir/arch/test_accel_config_io.cc.o"
  "CMakeFiles/test_arch.dir/arch/test_accel_config_io.cc.o.d"
  "CMakeFiles/test_arch.dir/arch/test_noc.cc.o"
  "CMakeFiles/test_arch.dir/arch/test_noc.cc.o.d"
  "test_arch"
  "test_arch.pdb"
  "test_arch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

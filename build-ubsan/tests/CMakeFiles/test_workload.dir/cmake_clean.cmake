file(REMOVE_RECURSE
  "CMakeFiles/test_workload.dir/workload/test_attention_workload.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_attention_workload.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_gemm_shape.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_gemm_shape.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_model_config.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_model_config.cc.o.d"
  "test_workload"
  "test_workload.pdb"
  "test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/flatsim.dir/flatsim.cc.o"
  "CMakeFiles/flatsim.dir/flatsim.cc.o.d"
  "flatsim"
  "flatsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flatsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for flatsim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libflat_workload.a"
)

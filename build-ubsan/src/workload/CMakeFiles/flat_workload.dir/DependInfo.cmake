
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/attention.cc" "src/workload/CMakeFiles/flat_workload.dir/attention.cc.o" "gcc" "src/workload/CMakeFiles/flat_workload.dir/attention.cc.o.d"
  "/root/repo/src/workload/gemm_shape.cc" "src/workload/CMakeFiles/flat_workload.dir/gemm_shape.cc.o" "gcc" "src/workload/CMakeFiles/flat_workload.dir/gemm_shape.cc.o.d"
  "/root/repo/src/workload/model_config.cc" "src/workload/CMakeFiles/flat_workload.dir/model_config.cc.o" "gcc" "src/workload/CMakeFiles/flat_workload.dir/model_config.cc.o.d"
  "/root/repo/src/workload/operator.cc" "src/workload/CMakeFiles/flat_workload.dir/operator.cc.o" "gcc" "src/workload/CMakeFiles/flat_workload.dir/operator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-ubsan/src/common/CMakeFiles/flat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

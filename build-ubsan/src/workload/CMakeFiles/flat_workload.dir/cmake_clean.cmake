file(REMOVE_RECURSE
  "CMakeFiles/flat_workload.dir/attention.cc.o"
  "CMakeFiles/flat_workload.dir/attention.cc.o.d"
  "CMakeFiles/flat_workload.dir/gemm_shape.cc.o"
  "CMakeFiles/flat_workload.dir/gemm_shape.cc.o.d"
  "CMakeFiles/flat_workload.dir/model_config.cc.o"
  "CMakeFiles/flat_workload.dir/model_config.cc.o.d"
  "CMakeFiles/flat_workload.dir/operator.cc.o"
  "CMakeFiles/flat_workload.dir/operator.cc.o.d"
  "libflat_workload.a"
  "libflat_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

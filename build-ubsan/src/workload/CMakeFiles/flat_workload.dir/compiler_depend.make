# Empty compiler generated dependencies file for flat_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/flat_kernels.dir/attention.cc.o"
  "CMakeFiles/flat_kernels.dir/attention.cc.o.d"
  "CMakeFiles/flat_kernels.dir/layer_ops.cc.o"
  "CMakeFiles/flat_kernels.dir/layer_ops.cc.o.d"
  "CMakeFiles/flat_kernels.dir/matrix.cc.o"
  "CMakeFiles/flat_kernels.dir/matrix.cc.o.d"
  "CMakeFiles/flat_kernels.dir/softmax.cc.o"
  "CMakeFiles/flat_kernels.dir/softmax.cc.o.d"
  "CMakeFiles/flat_kernels.dir/traffic_meter.cc.o"
  "CMakeFiles/flat_kernels.dir/traffic_meter.cc.o.d"
  "CMakeFiles/flat_kernels.dir/transformer_block.cc.o"
  "CMakeFiles/flat_kernels.dir/transformer_block.cc.o.d"
  "libflat_kernels.a"
  "libflat_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for flat_kernels.
# This may be replaced when dependencies are built.

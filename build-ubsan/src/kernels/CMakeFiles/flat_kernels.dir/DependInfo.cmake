
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/attention.cc" "src/kernels/CMakeFiles/flat_kernels.dir/attention.cc.o" "gcc" "src/kernels/CMakeFiles/flat_kernels.dir/attention.cc.o.d"
  "/root/repo/src/kernels/layer_ops.cc" "src/kernels/CMakeFiles/flat_kernels.dir/layer_ops.cc.o" "gcc" "src/kernels/CMakeFiles/flat_kernels.dir/layer_ops.cc.o.d"
  "/root/repo/src/kernels/matrix.cc" "src/kernels/CMakeFiles/flat_kernels.dir/matrix.cc.o" "gcc" "src/kernels/CMakeFiles/flat_kernels.dir/matrix.cc.o.d"
  "/root/repo/src/kernels/softmax.cc" "src/kernels/CMakeFiles/flat_kernels.dir/softmax.cc.o" "gcc" "src/kernels/CMakeFiles/flat_kernels.dir/softmax.cc.o.d"
  "/root/repo/src/kernels/traffic_meter.cc" "src/kernels/CMakeFiles/flat_kernels.dir/traffic_meter.cc.o" "gcc" "src/kernels/CMakeFiles/flat_kernels.dir/traffic_meter.cc.o.d"
  "/root/repo/src/kernels/transformer_block.cc" "src/kernels/CMakeFiles/flat_kernels.dir/transformer_block.cc.o" "gcc" "src/kernels/CMakeFiles/flat_kernels.dir/transformer_block.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-ubsan/src/common/CMakeFiles/flat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libflat_kernels.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/costmodel/attention_cost.cc" "src/costmodel/CMakeFiles/flat_costmodel.dir/attention_cost.cc.o" "gcc" "src/costmodel/CMakeFiles/flat_costmodel.dir/attention_cost.cc.o.d"
  "/root/repo/src/costmodel/cost_types.cc" "src/costmodel/CMakeFiles/flat_costmodel.dir/cost_types.cc.o" "gcc" "src/costmodel/CMakeFiles/flat_costmodel.dir/cost_types.cc.o.d"
  "/root/repo/src/costmodel/gemm_engine.cc" "src/costmodel/CMakeFiles/flat_costmodel.dir/gemm_engine.cc.o" "gcc" "src/costmodel/CMakeFiles/flat_costmodel.dir/gemm_engine.cc.o.d"
  "/root/repo/src/costmodel/operator_cost.cc" "src/costmodel/CMakeFiles/flat_costmodel.dir/operator_cost.cc.o" "gcc" "src/costmodel/CMakeFiles/flat_costmodel.dir/operator_cost.cc.o.d"
  "/root/repo/src/costmodel/trace.cc" "src/costmodel/CMakeFiles/flat_costmodel.dir/trace.cc.o" "gcc" "src/costmodel/CMakeFiles/flat_costmodel.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-ubsan/src/common/CMakeFiles/flat_common.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/arch/CMakeFiles/flat_arch.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/workload/CMakeFiles/flat_workload.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/dataflow/CMakeFiles/flat_dataflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libflat_costmodel.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/flat_costmodel.dir/attention_cost.cc.o"
  "CMakeFiles/flat_costmodel.dir/attention_cost.cc.o.d"
  "CMakeFiles/flat_costmodel.dir/cost_types.cc.o"
  "CMakeFiles/flat_costmodel.dir/cost_types.cc.o.d"
  "CMakeFiles/flat_costmodel.dir/gemm_engine.cc.o"
  "CMakeFiles/flat_costmodel.dir/gemm_engine.cc.o.d"
  "CMakeFiles/flat_costmodel.dir/operator_cost.cc.o"
  "CMakeFiles/flat_costmodel.dir/operator_cost.cc.o.d"
  "CMakeFiles/flat_costmodel.dir/trace.cc.o"
  "CMakeFiles/flat_costmodel.dir/trace.cc.o.d"
  "libflat_costmodel.a"
  "libflat_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

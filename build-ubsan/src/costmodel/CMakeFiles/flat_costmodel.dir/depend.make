# Empty dependencies file for flat_costmodel.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dse/candidates.cc" "src/dse/CMakeFiles/flat_dse.dir/candidates.cc.o" "gcc" "src/dse/CMakeFiles/flat_dse.dir/candidates.cc.o.d"
  "/root/repo/src/dse/search.cc" "src/dse/CMakeFiles/flat_dse.dir/search.cc.o" "gcc" "src/dse/CMakeFiles/flat_dse.dir/search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-ubsan/src/common/CMakeFiles/flat_common.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/arch/CMakeFiles/flat_arch.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/workload/CMakeFiles/flat_workload.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/dataflow/CMakeFiles/flat_dataflow.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/costmodel/CMakeFiles/flat_costmodel.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/energy/CMakeFiles/flat_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

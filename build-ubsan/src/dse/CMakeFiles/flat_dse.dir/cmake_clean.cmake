file(REMOVE_RECURSE
  "CMakeFiles/flat_dse.dir/candidates.cc.o"
  "CMakeFiles/flat_dse.dir/candidates.cc.o.d"
  "CMakeFiles/flat_dse.dir/search.cc.o"
  "CMakeFiles/flat_dse.dir/search.cc.o.d"
  "libflat_dse.a"
  "libflat_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libflat_dse.a"
)

# Empty dependencies file for flat_dse.
# This may be replaced when dependencies are built.

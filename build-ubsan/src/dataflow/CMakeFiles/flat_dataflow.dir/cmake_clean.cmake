file(REMOVE_RECURSE
  "CMakeFiles/flat_dataflow.dir/fused_dataflow.cc.o"
  "CMakeFiles/flat_dataflow.dir/fused_dataflow.cc.o.d"
  "CMakeFiles/flat_dataflow.dir/granularity.cc.o"
  "CMakeFiles/flat_dataflow.dir/granularity.cc.o.d"
  "CMakeFiles/flat_dataflow.dir/operator_dataflow.cc.o"
  "CMakeFiles/flat_dataflow.dir/operator_dataflow.cc.o.d"
  "CMakeFiles/flat_dataflow.dir/reuse.cc.o"
  "CMakeFiles/flat_dataflow.dir/reuse.cc.o.d"
  "CMakeFiles/flat_dataflow.dir/tiling.cc.o"
  "CMakeFiles/flat_dataflow.dir/tiling.cc.o.d"
  "libflat_dataflow.a"
  "libflat_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

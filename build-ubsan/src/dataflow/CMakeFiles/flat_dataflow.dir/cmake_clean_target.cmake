file(REMOVE_RECURSE
  "libflat_dataflow.a"
)

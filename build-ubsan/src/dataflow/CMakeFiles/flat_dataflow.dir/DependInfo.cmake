
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/fused_dataflow.cc" "src/dataflow/CMakeFiles/flat_dataflow.dir/fused_dataflow.cc.o" "gcc" "src/dataflow/CMakeFiles/flat_dataflow.dir/fused_dataflow.cc.o.d"
  "/root/repo/src/dataflow/granularity.cc" "src/dataflow/CMakeFiles/flat_dataflow.dir/granularity.cc.o" "gcc" "src/dataflow/CMakeFiles/flat_dataflow.dir/granularity.cc.o.d"
  "/root/repo/src/dataflow/operator_dataflow.cc" "src/dataflow/CMakeFiles/flat_dataflow.dir/operator_dataflow.cc.o" "gcc" "src/dataflow/CMakeFiles/flat_dataflow.dir/operator_dataflow.cc.o.d"
  "/root/repo/src/dataflow/reuse.cc" "src/dataflow/CMakeFiles/flat_dataflow.dir/reuse.cc.o" "gcc" "src/dataflow/CMakeFiles/flat_dataflow.dir/reuse.cc.o.d"
  "/root/repo/src/dataflow/tiling.cc" "src/dataflow/CMakeFiles/flat_dataflow.dir/tiling.cc.o" "gcc" "src/dataflow/CMakeFiles/flat_dataflow.dir/tiling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-ubsan/src/common/CMakeFiles/flat_common.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/workload/CMakeFiles/flat_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for flat_dataflow.
# This may be replaced when dependencies are built.

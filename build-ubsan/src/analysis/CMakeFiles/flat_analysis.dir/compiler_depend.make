# Empty compiler generated dependencies file for flat_analysis.
# This may be replaced when dependencies are built.

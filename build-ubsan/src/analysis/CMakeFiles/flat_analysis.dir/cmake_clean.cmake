file(REMOVE_RECURSE
  "CMakeFiles/flat_analysis.dir/roofline.cc.o"
  "CMakeFiles/flat_analysis.dir/roofline.cc.o.d"
  "libflat_analysis.a"
  "libflat_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/roofline.cc" "src/analysis/CMakeFiles/flat_analysis.dir/roofline.cc.o" "gcc" "src/analysis/CMakeFiles/flat_analysis.dir/roofline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-ubsan/src/common/CMakeFiles/flat_common.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/arch/CMakeFiles/flat_arch.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/workload/CMakeFiles/flat_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libflat_analysis.a"
)

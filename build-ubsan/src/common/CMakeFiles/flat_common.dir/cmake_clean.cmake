file(REMOVE_RECURSE
  "CMakeFiles/flat_common.dir/config.cc.o"
  "CMakeFiles/flat_common.dir/config.cc.o.d"
  "CMakeFiles/flat_common.dir/csv.cc.o"
  "CMakeFiles/flat_common.dir/csv.cc.o.d"
  "CMakeFiles/flat_common.dir/diagnostics.cc.o"
  "CMakeFiles/flat_common.dir/diagnostics.cc.o.d"
  "CMakeFiles/flat_common.dir/fault_injection.cc.o"
  "CMakeFiles/flat_common.dir/fault_injection.cc.o.d"
  "CMakeFiles/flat_common.dir/json.cc.o"
  "CMakeFiles/flat_common.dir/json.cc.o.d"
  "CMakeFiles/flat_common.dir/logging.cc.o"
  "CMakeFiles/flat_common.dir/logging.cc.o.d"
  "CMakeFiles/flat_common.dir/status.cc.o"
  "CMakeFiles/flat_common.dir/status.cc.o.d"
  "CMakeFiles/flat_common.dir/string_util.cc.o"
  "CMakeFiles/flat_common.dir/string_util.cc.o.d"
  "CMakeFiles/flat_common.dir/table.cc.o"
  "CMakeFiles/flat_common.dir/table.cc.o.d"
  "CMakeFiles/flat_common.dir/thread_pool.cc.o"
  "CMakeFiles/flat_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/flat_common.dir/units.cc.o"
  "CMakeFiles/flat_common.dir/units.cc.o.d"
  "libflat_common.a"
  "libflat_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/config.cc" "src/common/CMakeFiles/flat_common.dir/config.cc.o" "gcc" "src/common/CMakeFiles/flat_common.dir/config.cc.o.d"
  "/root/repo/src/common/csv.cc" "src/common/CMakeFiles/flat_common.dir/csv.cc.o" "gcc" "src/common/CMakeFiles/flat_common.dir/csv.cc.o.d"
  "/root/repo/src/common/diagnostics.cc" "src/common/CMakeFiles/flat_common.dir/diagnostics.cc.o" "gcc" "src/common/CMakeFiles/flat_common.dir/diagnostics.cc.o.d"
  "/root/repo/src/common/fault_injection.cc" "src/common/CMakeFiles/flat_common.dir/fault_injection.cc.o" "gcc" "src/common/CMakeFiles/flat_common.dir/fault_injection.cc.o.d"
  "/root/repo/src/common/json.cc" "src/common/CMakeFiles/flat_common.dir/json.cc.o" "gcc" "src/common/CMakeFiles/flat_common.dir/json.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/common/CMakeFiles/flat_common.dir/logging.cc.o" "gcc" "src/common/CMakeFiles/flat_common.dir/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/common/CMakeFiles/flat_common.dir/status.cc.o" "gcc" "src/common/CMakeFiles/flat_common.dir/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/common/CMakeFiles/flat_common.dir/string_util.cc.o" "gcc" "src/common/CMakeFiles/flat_common.dir/string_util.cc.o.d"
  "/root/repo/src/common/table.cc" "src/common/CMakeFiles/flat_common.dir/table.cc.o" "gcc" "src/common/CMakeFiles/flat_common.dir/table.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/common/CMakeFiles/flat_common.dir/thread_pool.cc.o" "gcc" "src/common/CMakeFiles/flat_common.dir/thread_pool.cc.o.d"
  "/root/repo/src/common/units.cc" "src/common/CMakeFiles/flat_common.dir/units.cc.o" "gcc" "src/common/CMakeFiles/flat_common.dir/units.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

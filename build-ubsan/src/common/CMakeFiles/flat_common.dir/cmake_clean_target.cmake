file(REMOVE_RECURSE
  "libflat_common.a"
)

# Empty compiler generated dependencies file for flat_common.
# This may be replaced when dependencies are built.

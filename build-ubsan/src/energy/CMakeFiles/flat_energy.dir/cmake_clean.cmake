file(REMOVE_RECURSE
  "CMakeFiles/flat_energy.dir/energy_model.cc.o"
  "CMakeFiles/flat_energy.dir/energy_model.cc.o.d"
  "libflat_energy.a"
  "libflat_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

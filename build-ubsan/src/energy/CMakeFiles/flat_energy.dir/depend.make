# Empty dependencies file for flat_energy.
# This may be replaced when dependencies are built.

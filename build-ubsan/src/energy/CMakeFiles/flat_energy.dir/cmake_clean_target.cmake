file(REMOVE_RECURSE
  "libflat_energy.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/flat_arch.dir/accel_config.cc.o"
  "CMakeFiles/flat_arch.dir/accel_config.cc.o.d"
  "CMakeFiles/flat_arch.dir/accel_config_io.cc.o"
  "CMakeFiles/flat_arch.dir/accel_config_io.cc.o.d"
  "CMakeFiles/flat_arch.dir/noc.cc.o"
  "CMakeFiles/flat_arch.dir/noc.cc.o.d"
  "libflat_arch.a"
  "libflat_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/accel_config.cc" "src/arch/CMakeFiles/flat_arch.dir/accel_config.cc.o" "gcc" "src/arch/CMakeFiles/flat_arch.dir/accel_config.cc.o.d"
  "/root/repo/src/arch/accel_config_io.cc" "src/arch/CMakeFiles/flat_arch.dir/accel_config_io.cc.o" "gcc" "src/arch/CMakeFiles/flat_arch.dir/accel_config_io.cc.o.d"
  "/root/repo/src/arch/noc.cc" "src/arch/CMakeFiles/flat_arch.dir/noc.cc.o" "gcc" "src/arch/CMakeFiles/flat_arch.dir/noc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-ubsan/src/common/CMakeFiles/flat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libflat_arch.a"
)

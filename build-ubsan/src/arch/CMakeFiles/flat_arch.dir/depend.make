# Empty dependencies file for flat_arch.
# This may be replaced when dependencies are built.

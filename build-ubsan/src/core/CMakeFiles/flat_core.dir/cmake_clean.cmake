file(REMOVE_RECURSE
  "CMakeFiles/flat_core.dir/catalog.cc.o"
  "CMakeFiles/flat_core.dir/catalog.cc.o.d"
  "CMakeFiles/flat_core.dir/simulator.cc.o"
  "CMakeFiles/flat_core.dir/simulator.cc.o.d"
  "CMakeFiles/flat_core.dir/sweep.cc.o"
  "CMakeFiles/flat_core.dir/sweep.cc.o.d"
  "libflat_core.a"
  "libflat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

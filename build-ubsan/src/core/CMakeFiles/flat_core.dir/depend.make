# Empty dependencies file for flat_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libflat_core.a"
)
